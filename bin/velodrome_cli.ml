(* The velodrome command-line tool.

   Subcommands:
   - list            benchmark workloads and their ground truth
   - run             run a workload under selected analyses
   - check           parse, statically check and analyze a .vel file
   - analyze         static mover/lockset pre-pass (Lipton reduction)
   - predict         witness-guided predictive atomicity (forced replays)
   - record          record a workload (or .vel program) trace to a file
   - check-trace     replay a recorded trace (text or binary, --stream)
   - convert         convert traces between the text and binary formats
   - table1          regenerate Table 1 (slowdowns, node statistics)
   - table2          regenerate Table 2 (warning classification)
   - study           adversarial-scheduling studies (coverage, injection)

   Trace files come in two formats, auto-detected on input: the textual
   format of Trace_io and the compact binary format of Trace_codec
   (written when the file name ends in .velb, or with convert).

   Exit codes, uniform across subcommands: 0 = clean (no warnings, every
   block proved), 1 = violations reported / blocks left unproved / a
   failed soundness gate, 2 = usage errors, ill-formed programs and
   corrupt trace files. *)

open Cmdliner
open Velodrome_analysis
open Velodrome_workloads

let size_conv =
  let parse = function
    | "small" -> Ok Workload.Small
    | "medium" -> Ok Workload.Medium
    | "large" -> Ok Workload.Large
    | s -> Error (`Msg (Printf.sprintf "unknown size %S" s))
  in
  let print ppf s =
    Format.fprintf ppf "%s"
      (match s with
      | Workload.Small -> "small"
      | Workload.Medium -> "medium"
      | Workload.Large -> "large")
  in
  Arg.conv (parse, print)

let size_arg =
  Arg.(
    value
    & opt size_conv Workload.Medium
    & info [ "size" ] ~docv:"SIZE" ~doc:"Workload size: small, medium, large.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Scheduler seed.")

let adversarial_arg =
  Arg.(
    value & flag
    & info [ "adversarial" ]
        ~doc:"Enable Atomizer-guided adversarial scheduling (Section 5).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,human) or $(b,json).")

let exits =
  [
    Cmd.Exit.info 0
      ~doc:"on a clean result: no warnings, every atomic block proved.";
    Cmd.Exit.info 1
      ~doc:
        "when warnings were reported, a block could not be proved atomic, \
         or the soundness gate failed.";
    Cmd.Exit.info 2
      ~doc:"on usage errors, ill-formed programs and corrupt trace files.";
    Cmd.Exit.info Cmd.Exit.internal_error ~doc:"on unexpected internal errors.";
  ]

(* Violations exit 1, so scripts and CI can gate on the status alone. *)
let exit_violations = function [] -> () | _ :: _ -> exit 1

let mk_backend names = function
  | "velodrome" -> Some (Backend.make (Velodrome_core.Engine.backend ()) names)
  | "velodrome-basic" ->
    Some (Backend.make (Velodrome_core.Basic.backend ()) names)
  | "aero" -> Some (Backend.make (Velodrome_core.Aero.backend ()) names)
  | "atomizer" ->
    Some (Backend.make (Velodrome_atomizer.Atomizer.backend ()) names)
  | "eraser" -> Some (Backend.make (Velodrome_eraser.Eraser.backend ()) names)
  | "hb" -> Some (Backend.make (Velodrome_hbrace.Hbrace.backend ()) names)
  | "fasttrack" ->
    Some (Backend.make (Velodrome_hbrace.Fasttrack.backend ()) names)
  | "2pl" -> Some (Backend.make (Velodrome_twopl.Twopl.backend ()) names)
  | "2pl-strict" ->
    Some
      (Backend.make
         (Velodrome_twopl.Twopl.backend ~config:{ Velodrome_twopl.Twopl.strict = true } ())
         names)
  | "empty" -> Some (Backend.make (module Empty) names)
  | _ -> None

let analyses_arg =
  Arg.(
    value
    & opt (list string) [ "velodrome"; "atomizer" ]
    & info [ "analysis"; "a"; "backend" ] ~docv:"LIST"
        ~doc:
          "Comma-separated back-ends: velodrome, velodrome-basic, aero, \
           atomizer, eraser, hb, fasttrack, empty.")

let spec_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:
          "Atomicity specification: which methods to check (see \
           Velodrome_harness.Spec).")

let load_spec = function
  | None -> Velodrome_harness.Spec.default
  | Some path -> (
    match Velodrome_harness.Spec.of_file path with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2)

let apply_spec spec names backends =
  List.map
    (Velodrome_harness.Exclude.methods
       ~excluded:(Velodrome_harness.Spec.excluded spec names))
    backends

let report_warnings names warnings =
  if warnings = [] then print_endline "No warnings."
  else begin
    Printf.printf "%d warning(s):\n" (List.length warnings);
    List.iter
      (fun w ->
        Format.printf "  %a@." (Warning.pp names) w)
      warnings
  end

let dump_dots dir names warnings =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  List.iteri
    (fun k (w : Warning.t) ->
      match w.Warning.dot with
      | Some dot ->
        let label =
          match w.Warning.label with
          | Some l -> Velodrome_trace.Names.label_name names l
          | None -> Printf.sprintf "warning%d" k
        in
        let path =
          Filename.concat dir
            (Printf.sprintf "%s.dot"
               (String.map (function '.' | '/' -> '_' | c -> c) label))
        in
        let oc = open_out path in
        output_string oc dot;
        close_out oc;
        Printf.printf "  error graph written to %s\n" path
      | None -> ())
    warnings

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-11s %s\n" w.Workload.name w.Workload.description;
        let non_atomic = Workload.non_atomic_count w in
        let total = List.length w.Workload.methods in
        Printf.printf "            methods: %d (%d with real violations)\n"
          total non_atomic)
      Workload.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmark workloads.")
    Term.(const run $ const ())

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see 'velodrome list').")
  in
  let dot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"DIR" ~doc:"Write error graphs as dot files.")
  in
  let run name size seed adversarial analyses dot_dir spec =
    match Workload.find name with
    | None ->
      Printf.eprintf "unknown workload %S\n" name;
      exit 2
    | Some w ->
      let program = w.Workload.build size in
      let names = program.Velodrome_sim.Ast.names in
      let backends =
        List.filter_map
          (fun a ->
            match mk_backend names a with
            | Some b -> Some b
            | None ->
              Printf.eprintf "unknown analysis %S (ignored)\n" a;
              None)
          analyses
        |> apply_spec (load_spec spec) names
      in
      let config =
        {
          Velodrome_sim.Run.default_config with
          policy = Velodrome_sim.Run.Random seed;
          adversarial;
        }
      in
      let res = Velodrome_sim.Run.run ~config program backends in
      Printf.printf "%s: %d events, %d pauses%s\n" name
        res.Velodrome_sim.Run.events res.Velodrome_sim.Run.pauses
        (if res.Velodrome_sim.Run.deadlocked then " (DEADLOCK)" else "");
      let warnings = Warning.dedup_by_label res.Velodrome_sim.Run.warnings in
      report_warnings names warnings;
      Option.iter (fun dir -> dump_dots dir names warnings) dot_dir;
      exit_violations warnings
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under selected analyses." ~exits)
    Term.(
      const run $ workload $ size_arg $ seed_arg $ adversarial_arg
      $ analyses_arg $ dot_dir $ spec_arg)

(* --- check --------------------------------------------------------------- *)

let check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .vel program file.")
  in
  let run file seed adversarial analyses spec =
    match Velodrome_lang.Parser.parse_file file with
    | exception Velodrome_lang.Parser.Parse_error (m, l, c) ->
      Format.eprintf "%s: %a@." file Velodrome_lang.Parser.pp_error (m, l, c);
      exit 2
    | exception Velodrome_lang.Lexer.Lex_error (m, l, c) ->
      Printf.eprintf "%s: lex error at %d:%d: %s\n" file l c m;
      exit 2
    | program -> (
      match Velodrome_lang.Check.check_program program with
      | Error errs ->
        List.iter
          (fun e ->
            Format.eprintf "%s: %a@." file Velodrome_lang.Check.pp_error e)
          errs;
        exit 2
      | Ok () ->
        let names = program.Velodrome_sim.Ast.names in
        let backends =
          List.filter_map (mk_backend names) analyses
          |> apply_spec (load_spec spec) names
        in
        let config =
          {
            Velodrome_sim.Run.default_config with
            policy = Velodrome_sim.Run.Random seed;
            adversarial;
          }
        in
        let res = Velodrome_sim.Run.run ~config program backends in
        Printf.printf "%s: %d events%s\n" file res.Velodrome_sim.Run.events
          (if res.Velodrome_sim.Run.deadlocked then " (DEADLOCK)" else "");
        let warnings =
          Warning.dedup_by_label res.Velodrome_sim.Run.warnings
        in
        report_warnings names warnings;
        exit_violations warnings)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a .vel program file for atomicity." ~exits)
    Term.(
      const run $ file $ seed_arg $ adversarial_arg $ analyses_arg $ spec_arg)

(* A program target is a .vel source file or a workload name. Parsing a
   file also yields the source position of each atomic label, which
   analyze uses to anchor verdicts; workloads are built in memory and
   have none. *)
let build_program_info name size =
  if Filename.check_suffix name ".vel" && Sys.file_exists name then
    match Velodrome_lang.Parser.parse_file_info name with
    | exception Velodrome_lang.Parser.Parse_error (m, l, c) ->
      Format.eprintf "%s: %a@." name Velodrome_lang.Parser.pp_error (m, l, c);
      exit 2
    | exception Velodrome_lang.Lexer.Lex_error (m, l, c) ->
      Printf.eprintf "%s: lex error at %d:%d: %s\n" name l c m;
      exit 2
    | program, positions -> (program, fun l -> List.assoc_opt l positions)
  else
    match Workload.find name with
    | None ->
      Printf.eprintf "unknown workload %S\n" name;
      exit 2
    | Some w -> (w.Workload.build size, fun _ -> None)

let build_program name size = fst (build_program_info name size)

(* --- analyze ----------------------------------------------------------------- *)

module Statics = Velodrome_statics.Statics
module Predict = Velodrome_predict.Predict
module Pplan = Velodrome_predict.Plan

(* The dynamic soundness gate behind [analyze --gate]: replay the program
   under round-robin, seeded-random and adversarial schedules and check
   both directions of the static story. The full Velodrome engine must
   never refute a statically-proved block (Theorem 1 makes blame a
   completeness claim — the transaction really is non-serializable — so a
   single mismatch is a statics bug, not scheduling noise); every block
   it does blame must be statically may-violate, since the conflict
   graph over-approximates every dynamic happens-before edge and a blame
   is a real cycle (a blamed block that is merely Unknown means the
   budget valve fired, which these program sizes never reach); and every
   dynamic race warning from the Eraser and happens-before back-ends must
   land on a variable the pairwise static detector also flags: a
   variable in no static race pair is race-free on every execution, so
   an uncovered dynamic race warning is likewise a statics bug. *)
let gate_schedules seeds =
  ("round-robin", Velodrome_sim.Run.Round_robin, false)
  :: List.concat_map
       (fun s ->
         [
           (Printf.sprintf "random(seed %d)" s, Velodrome_sim.Run.Random s, false);
           ( Printf.sprintf "adversarial(seed %d)" s,
             Velodrome_sim.Run.Random s,
             true );
         ])
       seeds

type gate_result = {
  gate_warnings : int;  (** dynamic warnings across all schedules *)
  blame_mismatches : (string * string) list;  (** schedule, proved label *)
  uncovered_blames : (string * string) list;
      (** schedule, dynamically blamed label whose static verdict is not
          may-violate — the coverage direction of the gate *)
  uncovered_races : (string * string * string) list;
      (** schedule, analysis, variable with a dynamic race warning but no
          static race pair *)
  engine_disagreements : (string * string) list;
      (** schedule, description — the three-way differential over the
          recorded trace of each schedule *)
  value_violations : (string * string) list;
      (** schedule, description — a dynamic event from a statically-dead
          site, or an observed value outside its static interval *)
}

let gate_ok g =
  g.blame_mismatches = [] && g.uncovered_blames = [] && g.uncovered_races = []
  && g.engine_disagreements = [] && g.value_violations = []

(* The three-way engine differential behind the gate: replay each
   schedule's recorded trace through the optimized engine, the Figure 2
   reference and AeroDrome. Two independent sound-and-complete
   algorithms (explicit happens-before graph vs vector clocks) must
   agree on the verdict and on the first violating event, and Aero must
   match Basic warning-for-warning. *)
let engine_trio_check names trace =
  let module E = Velodrome_core.Engine in
  let module B = Velodrome_core.Basic in
  let module A = Velodrome_core.Aero in
  let e = E.create names and b = B.create names and a = A.create names in
  List.iter
    (fun ev ->
      E.on_event e ev;
      B.on_event b ev;
      A.on_event a ev)
    (Velodrome_trace.Event.of_ops (Velodrome_trace.Trace.to_list trace));
  E.finish e;
  B.finish b;
  A.finish a;
  let proj (w : Warning.t) =
    (w.Warning.kind, w.Warning.tid, w.Warning.label, w.Warning.index,
     w.Warning.message)
  in
  let wa = List.sort compare (List.map proj (A.warnings a))
  and wb = List.sort compare (List.map proj (B.warnings b)) in
  if E.has_error e <> B.has_error b || B.has_error b <> A.has_error a then
    Some
      (Printf.sprintf "verdicts disagree: velodrome=%b basic=%b aero=%b"
         (E.has_error e) (B.has_error b) (A.has_error a))
  else if
    E.first_error_index e <> B.first_error_index b
    || B.first_error_index b <> A.first_error_index a
  then Some "first violation index disagrees across engines"
  else if wa <> wb then
    Some
      (Printf.sprintf "aero/basic warning sets differ (%d vs %d)"
         (List.length wa) (List.length wb))
  else None

let may_violate st l =
  List.exists
    (fun b ->
      Velodrome_trace.Ids.Label.equal b.Statics.label l
      &&
      match b.Statics.verdict with
      | Statics.May_violate _ -> true
      | _ -> false)
    (Statics.blocks st)

(* The value-analysis obligations of the gate, checked per schedule via
   the interpreter's observation hook: no dynamic event may come from a
   statically-dead site, and every observed value at a fact-carrying
   site must lie within the static interval. The first violation per
   schedule is kept — one witness is enough to fail, and the hook stays
   cheap on the hot path. *)
let value_observer vals violation =
  Option.map
    (fun v (o : Velodrome_sim.Interp.obs) ->
      if !violation = None then begin
        let module V = Velodrome_statics.Values in
        let site =
          {
            Velodrome_statics.Cfg.thread = o.Velodrome_sim.Interp.o_thread;
            path = o.Velodrome_sim.Interp.o_path;
          }
        in
        if V.dead_site v site then
          violation :=
            Some
              (Printf.sprintf "event from statically-dead site %s"
                 (Velodrome_statics.Cfg.site_to_string site))
        else
          match (o.Velodrome_sim.Interp.o_value, V.fact_at v site) with
          | Some x, Some f when not (V.mem x f.V.itv) ->
            violation :=
              Some
                (Printf.sprintf
                   "observed value %d at %s outside static interval %s" x
                   (Velodrome_statics.Cfg.site_to_string site)
                   (V.itv_to_string f.V.itv))
          | _ -> ()
      end)
    vals

let run_gate program st seeds =
  let names = program.Velodrome_sim.Ast.names in
  let races = Statics.races st in
  let vals = Statics.values st in
  let warnings = ref 0 in
  let blame = ref [] in
  let unblamed = ref [] in
  let uncovered = ref [] in
  let engines = ref [] in
  let value_viols = ref [] in
  List.iter
    (fun (desc, policy, adversarial) ->
      let backends =
        [
          Backend.make (Velodrome_core.Engine.backend ()) names;
          Backend.make (Velodrome_eraser.Eraser.backend ()) names;
          Backend.make (Velodrome_hbrace.Hbrace.backend ()) names;
        ]
      in
      let violation = ref None in
      let config =
        {
          Velodrome_sim.Run.default_config with
          policy;
          adversarial;
          record_trace = true;
          observe = value_observer vals violation;
        }
      in
      let res = Velodrome_sim.Run.run ~config program backends in
      (match !violation with
      | Some msg -> value_viols := (desc, msg) :: !value_viols
      | None -> ());
      (match res.Velodrome_sim.Run.trace with
      | Some tr -> (
        match engine_trio_check names tr with
        | Some msg -> engines := (desc, msg) :: !engines
        | None -> ())
      | None -> ());
      warnings := !warnings + List.length res.Velodrome_sim.Run.warnings;
      List.iter
        (fun (w : Warning.t) ->
          List.iter
            (fun l ->
              if Statics.proved st l then
                blame :=
                  (desc, Velodrome_trace.Names.label_name names l) :: !blame
              else if not (may_violate st l) then
                unblamed :=
                  (desc, Velodrome_trace.Names.label_name names l)
                  :: !unblamed)
            w.Warning.refuted;
          match (w.Warning.kind, w.Warning.var) with
          | Warning.Race, Some x
            when not (Velodrome_statics.Races.racy_var races x) ->
            uncovered :=
              ( desc,
                w.Warning.analysis,
                Velodrome_trace.Names.var_name names x )
              :: !uncovered
          | _ -> ())
        res.Velodrome_sim.Run.warnings)
    (gate_schedules seeds);
  {
    gate_warnings = !warnings;
    blame_mismatches = List.rev !blame;
    uncovered_blames = List.sort_uniq compare !unblamed;
    uncovered_races = List.sort_uniq compare !uncovered;
    engine_disagreements = List.rev !engines;
    value_violations = List.rev !value_viols;
  }

(* A gate failure on a generated program is only actionable if it can be
   replayed. Print the progen seed, the program's structured families and
   the offending schedule on stderr, plus the single command that
   reproduces the run. The shape is pinned by `analyze --replay-demo` in
   the cram suite, so scripts can rely on it. *)
let print_generated_replay ~gen_seed ~families ~schedule ~seeds =
  Printf.eprintf
    "gate: generated program FAILED: progen seed %d, family %s, schedule \
     %s\n"
    gen_seed
    (String.concat "+" families)
    schedule;
  Printf.eprintf
    "gate: replay: velodrome analyze --generated 1 --gen-seed %d --seeds \
     %s --gate\n"
    gen_seed
    (String.concat "," (List.map string_of_int seeds))

let analyze_cmd =
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"A .vel program file or workload name (omit with --all).")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Analyze every workload.")
  in
  let gate =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Soundness gate: additionally replay each program under \
             round-robin, random and adversarial schedules (one run per \
             --seeds entry each) and fail if dynamic Velodrome ever blames \
             a statically-proved block, or if Eraser or the \
             happens-before detector warns about a variable in no static \
             race pair.")
  in
  let races_flag =
    Arg.(
      value & flag
      & info [ "races" ]
          ~doc:
            "Also report every static race pair (as the races subcommand \
             does).")
  in
  let seeds =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3 ]
      & info [ "seeds" ] ~docv:"LIST"
          ~doc:"Scheduler seeds for the --gate runs.")
  in
  let graph =
    Arg.(
      value & flag
      & info [ "graph" ]
          ~doc:
            "Also report the static transactional conflict graph: node \
             and edge counts by sort, budget status, and one witness \
             cycle per may-violate block.")
  in
  let dot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot-dir" ] ~docv:"DIR"
          ~doc:
            "Write the static conflict graph and each witness cycle as \
             dot files, mirroring the dynamic error graphs of 'run \
             --dot'.")
  in
  let generated =
    Arg.(
      value & opt int 0
      & info [ "generated" ] ~docv:"N"
          ~doc:
            "Additionally analyze (and with --gate, replay) N generated \
             programs with consecutive progen seeds starting at \
             --gen-seed.")
  in
  let gen_seed =
    Arg.(
      value & opt int 1
      & info [ "gen-seed" ] ~docv:"S"
          ~doc:"First progen seed for --generated.")
  in
  let replay_demo =
    Arg.(
      value & flag
      & info [ "replay-demo" ]
          ~doc:
            "Print the replay message a failing generated gate would \
             emit (for pinning its shape in tests) and exit.")
  in
  let predict_flag =
    Arg.(
      value & flag
      & info [ "predict" ]
          ~doc:
            "Witness-guided prediction: lower each may-violate block's \
             witness cycles into forced schedules, replay them, and \
             upgrade the verdict to predicted-violation when the engine \
             trio certifies the forced trace. With --gate, every emitted \
             prediction is additionally re-replayed and re-certified; an \
             uncertified prediction fails the gate.")
  in
  let values_flag =
    Arg.(
      value & flag
      & info [ "values" ]
          ~doc:
            "Also report the per-thread value analysis: one interval \
             fact per register write and shared access, plus every \
             statically-dead branch arm.")
  in
  let no_values =
    Arg.(
      value & flag
      & info [ "no-values" ]
          ~doc:
            "Disable the value analysis entirely: no branch pruning \
             feeds the static passes and the --gate value obligations \
             are skipped.")
  in
  let run target all fmt gate races graph dot_dir generated gen_seed
      replay_demo size seeds predict values_flag no_values =
    if replay_demo then begin
      print_generated_replay ~gen_seed:7
        ~families:[ "publication"; "snapshot" ]
        ~schedule:"adversarial(seed 2)" ~seeds;
      exit 0
    end;
    let named =
      if all then
        List.map
          (fun w ->
            (w.Workload.name, w.Workload.build size, (fun _ -> None), None))
          Workload.all
      else
        match target with
        | None when generated > 0 -> []
        | None ->
          Printf.eprintf "analyze: a TARGET (or --all) is required\n";
          exit 2
        | Some name ->
          let program, pos = build_program_info name size in
          [ (name, program, pos, None) ]
    in
    let targets =
      named
      @ List.init generated (fun k ->
            let s = gen_seed + k in
            let program, info =
              Velodrome_sim.Progen.generate_info
                (Velodrome_util.Rng.create s)
            in
            ( Printf.sprintf "generated(progen seed %d)" s,
              program,
              (fun _ -> None),
              Some (s, info.Velodrome_sim.Progen.families) ))
    in
    let any_unknown = ref false in
    let gate_failed = ref false in
    let results =
      List.map
        (fun (name, program, pos, origin) ->
          (match Velodrome_lang.Check.check_program program with
          | Ok () -> ()
          | Error errs ->
            List.iter
              (fun e ->
                Format.eprintf "%s: %a@." name Velodrome_lang.Check.pp_error
                  e)
              errs;
            exit 2);
          let st = Statics.analyze ~values:(not no_values) program in
          if Statics.proved_count st < Statics.block_count st then
            any_unknown := true;
          let gate_result =
            if gate then begin
              let g = run_gate program st seeds in
              if not (gate_ok g) then begin
                gate_failed := true;
                match origin with
                | Some (s, families) ->
                  let schedule =
                    match
                      ( g.blame_mismatches,
                        g.uncovered_blames,
                        g.uncovered_races,
                        g.engine_disagreements )
                    with
                    | (sched, _) :: _, _, _, _
                    | _, (sched, _) :: _, _, _
                    | _, _, (sched, _, _) :: _, _
                    | _, _, _, (sched, _) :: _ ->
                      sched
                    | [], [], [], [] -> "unknown"
                  in
                  print_generated_replay ~gen_seed:s ~families ~schedule
                    ~seeds
                | None -> ()
              end;
              Some g
            end
            else None
          in
          let predict_info =
            if predict then begin
              let p = Predict.run program st in
              let spec =
                match origin with
                | Some (s, _) -> Printf.sprintf "--gen-seed %d" s
                | None -> name
              in
              (* The prediction gate: re-replay every emitted prediction
                 from its schedule line and re-certify with the trio. By
                 construction Predict only emits certified predictions,
                 so a recheck failure means the replay line itself does
                 not reproduce — which is exactly what the gate exists
                 to catch. *)
              let recheck_failures =
                if gate then
                  List.filter_map
                    (fun (pr : Predict.prediction) ->
                      match
                        Predict.replay_and_certify program pr.Predict.label
                          pr.Predict.plan.Pplan.waypoints
                      with
                      | Ok _ -> None
                      | Error msg -> Some (pr.Predict.name, msg))
                    (Predict.predictions p)
                else []
              in
              if recheck_failures <> [] then gate_failed := true;
              Some (p, spec, recheck_failures)
            end
            else None
          in
          (name, pos, st, gate_result, predict_info))
        targets
    in
    let schedules = List.length (gate_schedules seeds) in
    (match fmt with
    | `Human ->
      List.iter
        (fun (name, pos, st, gate_result, predict_info) ->
          if all || generated > 0 then Format.printf "== %s ==@." name;
          Format.printf "%a" (Statics.pp_human ~pos) st;
          if values_flag then Format.printf "%a" Statics.pp_values_human st;
          if races then Format.printf "%a" (Statics.pp_races_human ~pos) st;
          if graph then Format.printf "%a" Statics.pp_graph_human st;
          (match predict_info with
          | None -> ()
          | Some (p, spec, fails) ->
            Format.printf "%a" (Predict.pp_human ~replay_with:spec) p;
            if gate then
              if fails = [] then
                Format.printf
                  "prediction gate: OK (%d prediction%s re-certified by \
                   replay)@."
                  (List.length (Predict.predictions p))
                  (if List.length (Predict.predictions p) = 1 then ""
                   else "s")
              else
                List.iter
                  (fun (b, msg) ->
                    Format.printf
                      "prediction gate: FAILED: %s: %s@." b msg)
                  fails);
          match gate_result with
          | None -> ()
          | Some g when gate_ok g ->
            Format.printf
              "soundness gate: OK (%d schedules, %d dynamic warnings, no \
               proved block blamed, every blamed block may-violate, every \
               dynamic race statically covered, aero = velodrome = basic on \
               every recorded trace%s)@."
              schedules g.gate_warnings
              (if Statics.values st <> None then
                 ", no dead site executed, every observed value in its \
                  static interval"
               else "")
          | Some g ->
            List.iter
              (fun (sched, label) ->
                Format.printf
                  "soundness gate: FAILED: proved block %s blamed under \
                   %s@."
                  label sched)
              g.blame_mismatches;
            List.iter
              (fun (sched, label) ->
                Format.printf
                  "soundness gate: FAILED: blamed block %s is not \
                   statically may-violate under %s@."
                  label sched)
              g.uncovered_blames;
            List.iter
              (fun (sched, analysis, var) ->
                Format.printf
                  "soundness gate: FAILED: %s warned about %s under %s but \
                   no static race pair covers it@."
                  analysis var sched)
              g.uncovered_races;
            List.iter
              (fun (sched, msg) ->
                Format.printf
                  "soundness gate: FAILED: engines disagree under %s: %s@."
                  sched msg)
              g.engine_disagreements;
            List.iter
              (fun (sched, msg) ->
                Format.printf
                  "soundness gate: FAILED: value analysis unsound under \
                   %s: %s@."
                  sched msg)
              g.value_violations)
        results
    | `Json ->
      let open Velodrome_util.Json in
      let docs =
        List.map
          (fun (name, pos, st, gate_result, predict_info) ->
            let base = Statics.to_json ~pos ~file:name st in
            let with_extras doc =
              match doc with
              | Obj fields ->
                let fields =
                  if values_flag then
                    fields @ [ ("values", Statics.values_json st) ]
                  else fields
                in
                let fields =
                  if races then
                    fields @ [ ("races", Statics.races_to_json ~pos st) ]
                  else fields
                in
                let fields =
                  if graph then fields @ [ ("graph", Statics.graph_json st) ]
                  else fields
                in
                let fields =
                  match predict_info with
                  | None -> fields
                  | Some (p, spec, fails) ->
                    let pdoc =
                      match Predict.to_json ~replay_with:spec p with
                      | Obj pf when gate ->
                        Obj
                          (pf
                          @ [
                              ( "gate",
                                Obj
                                  [
                                    ( "recertified",
                                      Int
                                        (List.length (Predict.predictions p)
                                        - List.length fails) );
                                    ( "failures",
                                      List
                                        (List.map
                                           (fun (b, msg) ->
                                             Obj
                                               [
                                                 ("block", String b);
                                                 ("message", String msg);
                                               ])
                                           fails) );
                                    ("ok", Bool (fails = []));
                                  ] );
                            ])
                      | pdoc -> pdoc
                    in
                    fields @ [ ("predict", pdoc) ]
                in
                Obj fields
              | doc -> doc
            in
            with_extras
              (match (base, gate_result) with
              | Obj fields, Some g ->
                Obj
                  (fields
                  @ [
                      ( "gate",
                        Obj
                          [
                            ("schedules", Int schedules);
                            ("dynamic_warnings", Int g.gate_warnings);
                            ( "mismatches",
                              List
                                (List.map
                                   (fun (sched, label) ->
                                     Obj
                                       [
                                         ("label", String label);
                                         ("schedule", String sched);
                                       ])
                                   g.blame_mismatches) );
                            ( "uncovered_blames",
                              List
                                (List.map
                                   (fun (sched, label) ->
                                     Obj
                                       [
                                         ("label", String label);
                                         ("schedule", String sched);
                                       ])
                                   g.uncovered_blames) );
                            ( "uncovered_races",
                              List
                                (List.map
                                   (fun (sched, analysis, var) ->
                                     Obj
                                       [
                                         ("var", String var);
                                         ("analysis", String analysis);
                                         ("schedule", String sched);
                                       ])
                                   g.uncovered_races) );
                            ( "engine_disagreements",
                              List
                                (List.map
                                   (fun (sched, msg) ->
                                     Obj
                                       [
                                         ("message", String msg);
                                         ("schedule", String sched);
                                       ])
                                   g.engine_disagreements) );
                            ( "value_violations",
                              List
                                (List.map
                                   (fun (sched, msg) ->
                                     Obj
                                       [
                                         ("message", String msg);
                                         ("schedule", String sched);
                                       ])
                                   g.value_violations) );
                            ("ok", Bool (gate_ok g));
                          ] );
                    ])
              | doc, _ -> doc))
          results
      in
      let out =
        match docs with
        | [ d ] when (not all) && generated = 0 -> d
        | ds -> List ds
      in
      print_endline (to_string out));
    Option.iter
      (fun dir ->
        (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
        List.iter
          (fun (name, _, st, _, _) ->
            let slug =
              String.map
                (function '.' | '/' | '(' | ')' | ' ' -> '_' | c -> c)
                name
            in
            List.iter
              (fun (kind, dot) ->
                let path =
                  Filename.concat dir
                    (Printf.sprintf "%s.%s.dot" slug kind)
                in
                let oc = open_out path in
                output_string oc dot;
                close_out oc;
                match fmt with
                | `Human -> Printf.printf "static graph written to %s\n" path
                | `Json -> ())
              (Statics.graph_dots st))
          results)
      dot_dir;
    if !gate_failed then exit 1;
    if (not gate) && !any_unknown then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static atomicity pre-pass: per-thread CFGs, must-lockset \
          dataflow, Lipton mover classification, a reduction check per \
          atomic block and a transactional conflict-graph cycle search. \
          Exits 0 when every block is proved atomic, 1 otherwise (or on \
          a failed --gate)."
       ~exits)
    Term.(
      const run $ target $ all $ format_arg $ gate $ races_flag $ graph
      $ dot_dir $ generated $ gen_seed $ replay_demo $ size_arg $ seeds
      $ predict_flag $ values_flag $ no_values)

(* --- predict ----------------------------------------------------------------- *)

let predict_cmd =
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A .vel program file or workload name (or use --gen-seed for \
             a generated program).")
  in
  let gen_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-seed" ] ~docv:"S"
          ~doc:
            "Predict on the generated program with progen seed S instead \
             of a TARGET.")
  in
  let block =
    Arg.(
      value
      & opt (some string) None
      & info [ "block" ] ~docv:"NAME"
          ~doc:
            "Restrict prediction to the atomic block NAME (required by \
             --schedule).")
  in
  let schedule =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"PLAN"
          ~doc:
            "Replay one waypoint schedule (the payload of a prediction's \
             replay line, e.g. \"t0@1.0 -> t1@2\") against --block and \
             certify it with the engine trio, instead of planning from \
             witnesses.")
  in
  let max_witnesses =
    Arg.(
      value & opt int 8
      & info [ "max-witnesses" ] ~docv:"N"
          ~doc:"Witness cycles tried per may-violate block.")
  in
  let run target gen_seed block schedule fmt size max_witnesses =
    let spec, program =
      match (target, gen_seed) with
      | Some _, Some _ ->
        Printf.eprintf "predict: TARGET and --gen-seed are mutually \
                        exclusive\n";
        exit 2
      | None, None ->
        Printf.eprintf "predict: a TARGET or --gen-seed is required\n";
        exit 2
      | Some name, None -> (name, build_program name size)
      | None, Some s ->
        ( Printf.sprintf "--gen-seed %d" s,
          fst
            (Velodrome_sim.Progen.generate_info
               (Velodrome_util.Rng.create s)) )
    in
    (match Velodrome_lang.Check.check_program program with
    | Ok () -> ()
    | Error errs ->
      List.iter
        (fun e ->
          Format.eprintf "%s: %a@." spec Velodrome_lang.Check.pp_error e)
        errs;
      exit 2);
    let st = Statics.analyze program in
    match schedule with
    | Some sch -> begin
      let bname =
        match block with
        | Some b -> b
        | None ->
          Printf.eprintf "predict: --schedule requires --block\n";
          exit 2
      in
      let blk =
        match
          List.find_opt
            (fun (b : Statics.block) -> b.Statics.name = bname)
            (Statics.blocks st)
        with
        | Some b -> b
        | None ->
          Printf.eprintf "predict: no atomic block named %S\n" bname;
          exit 2
      in
      match Pplan.parse_schedule sch with
      | Error msg ->
        Printf.eprintf "predict: bad --schedule: %s\n" msg;
        exit 2
      | Ok plan -> (
        match Predict.replay_and_certify program blk.Statics.label plan with
        | Ok idx ->
          Format.printf
            "%s: certified violation at event %d under the forced \
             schedule@."
            bname idx;
          exit 1
        | Error msg ->
          Format.printf "%s: not certified: %s@." bname msg;
          exit 0)
    end
    | None ->
      let p = Predict.run ?only:block ~max_witnesses program st in
      (match fmt with
      | `Human -> Format.printf "%a" (Predict.pp_human ~replay_with:spec) p
      | `Json ->
        print_endline
          (Velodrome_util.Json.to_string
             (Predict.to_json ~file:spec ~replay_with:spec p)));
      if Predict.predictions p <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Witness-guided predictive atomicity: lower each statically \
          may-violate block's witness cycles into forced schedules, \
          replay them deterministically, and report only violations the \
          engine trio certifies on the forced trace. Exits 1 when \
          predictions are emitted, 0 when none."
       ~exits)
    Term.(
      const run $ target $ gen_seed $ block $ schedule $ format_arg
      $ size_arg $ max_witnesses)

(* --- races ------------------------------------------------------------------- *)

let races_cmd =
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"A .vel program file or workload name (omit with --all).")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Report every workload.")
  in
  let run target all fmt size =
    let targets =
      if all then
        List.map
          (fun w ->
            (w.Workload.name, w.Workload.build size, fun _ -> None))
          Workload.all
      else
        match target with
        | None ->
          Printf.eprintf "races: a TARGET (or --all) is required\n";
          exit 2
        | Some name ->
          let program, pos = build_program_info name size in
          [ (name, program, pos) ]
    in
    let any_races = ref false in
    let results =
      List.map
        (fun (name, program, pos) ->
          (match Velodrome_lang.Check.check_program program with
          | Ok () -> ()
          | Error errs ->
            List.iter
              (fun e ->
                Format.eprintf "%s: %a@." name Velodrome_lang.Check.pp_error
                  e)
              errs;
            exit 2);
          let st = Statics.analyze program in
          if Statics.race_pair_count st > 0 then any_races := true;
          (name, pos, st))
        targets
    in
    (match fmt with
    | `Human ->
      List.iter
        (fun (name, pos, st) ->
          if all then Format.printf "== %s ==@." name;
          Format.printf "%a" (Statics.pp_races_human ~pos) st)
        results
    | `Json ->
      let open Velodrome_util.Json in
      let docs =
        List.map
          (fun (name, pos, st) -> Statics.races_to_json ~pos ~file:name st)
          results
      in
      let out = match docs with [ d ] when not all -> d | ds -> List ds in
      print_endline (to_string out));
    if !any_races then exit 1
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Whole-program pairwise static race detection: for every ordered \
          pair of conflicting access sites that may run in parallel, \
          intersect their must-locksets and report the pairs with no \
          common lock, with the atomic blocks each pair endangers. Exits \
          0 when no race pair is found, 1 when at least one is reported, \
          2 on unparseable or ill-formed input."
       ~exits)
    Term.(const run $ target $ all $ format_arg $ size_arg)

(* --- trace files ------------------------------------------------------------ *)

(* A trace destination is binary iff it is named .velb; sources are
   sniffed by magic, so either format is accepted everywhere. *)
let binary_path path = Filename.check_suffix path ".velb"

let write_trace names trace path =
  if binary_path path then
    Velodrome_trace.Trace_codec.write_file names trace path
  else Velodrome_trace.Trace_io.write_file names trace path

let record_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload to record, or a .vel program file.")
  in
  let out =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Output trace file (binary when named *.velb).")
  in
  let run name out size seed =
    let program = build_program name size in
    let config =
      {
        Velodrome_sim.Run.default_config with
        policy = Velodrome_sim.Run.Random seed;
        record_trace = true;
      }
    in
    let res = Velodrome_sim.Run.run ~config program [] in
    let trace = Option.get res.Velodrome_sim.Run.trace in
    write_trace program.Velodrome_sim.Ast.names trace out;
    Printf.printf "recorded %d operations to %s\n"
      (Velodrome_trace.Trace.length trace)
      out
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a workload's event trace to a file.")
    Term.(const run $ workload $ out $ size_arg $ seed_arg)

let read_trace file =
  if Velodrome_trace.Trace_codec.is_binary_file file then
    Velodrome_trace.Trace_codec.read_file file
  else Velodrome_trace.Trace_io.read_file file

let load_trace file =
  match read_trace file with
  | exception Velodrome_trace.Trace_io.Syntax_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" file line msg;
    exit 2
  | exception Velodrome_trace.Trace_codec.Corrupt msg ->
    Printf.eprintf "%s: corrupt binary trace: %s\n" file msg;
    exit 2
  | names, trace -> (
    match Velodrome_trace.Trace.check trace with
    | Error v ->
      Format.eprintf "%s: ill-formed trace: %a@." file
        Velodrome_trace.Trace.pp_violation v;
      exit 2
    | Ok () -> (names, trace))

(* Like mk_backend, but the optimized engine is built explicitly so the
   --stats reporter can probe its live happens-before node count. *)
let mk_stream_backends names analyses =
  let probe = ref None in
  let backends =
    List.filter_map
      (function
        | "velodrome" ->
          let eng = Velodrome_core.Engine.create names in
          probe :=
            Some (fun () -> Velodrome_core.Engine.nodes_live eng);
          let module E = struct
            type t = Velodrome_core.Engine.t

            let name = "velodrome"
            let create _ = eng
            let on_event = Velodrome_core.Engine.on_event
            let pause_hint _ _ = false
            let finish = Velodrome_core.Engine.finish
            let warnings = Velodrome_core.Engine.warnings
          end in
          Some (Backend.make (module E) names)
        | a -> (
          match mk_backend names a with
          | Some b -> Some b
          | None ->
            Printf.eprintf "unknown analysis %S (ignored)\n" a;
            None))
      analyses
  in
  (backends, !probe)

let print_stats (s : Velodrome_stream.Driver.stats) =
  Printf.eprintf
    "[stream] events=%d warnings=%d%s alloc=%.0fw minor-gcs=%d major-gcs=%d\n%!"
    s.Velodrome_stream.Driver.events s.Velodrome_stream.Driver.warnings
    (match s.Velodrome_stream.Driver.live_nodes with
    | Some n -> Printf.sprintf " live-nodes=%d" n
    | None -> "")
    s.Velodrome_stream.Driver.allocated_words
    s.Velodrome_stream.Driver.minor_collections
    s.Velodrome_stream.Driver.major_collections

let warning_json = Warning.to_json

let report_trace_result ?(partial = false) fmt file events names warnings =
  match fmt with
  | `Human ->
    Printf.printf "%s: %d operations%s\n" file events
      (if partial then " (partial: stream truncated)" else "");
    report_warnings names warnings
  | `Json ->
    let open Velodrome_util.Json in
    print_endline
      (to_string
         (Obj
            ([
               ("file", String file);
               ("events", Int events);
               ("warnings", List (List.map (warning_json names) warnings));
             ]
            @ if partial then [ ("partial", Bool true) ] else [])))

let check_trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A recorded trace file (text or binary).")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Replay directly from the file in bounded memory instead of \
             loading the whole trace first.")
  in
  let stats =
    Arg.(
      value
      & opt (some int) None
      & info [ "stats" ] ~docv:"N"
          ~doc:
            "With --stream: report engine statistics to stderr every N \
             events.")
  in
  let run file analyses stream stats fmt =
    if stream then begin
      match
        Velodrome_stream.Source.with_file file (fun src ->
            let names = src.Velodrome_stream.Source.names in
            let backends, live_nodes = mk_stream_backends names analyses in
            let progress = Option.map (fun _ -> print_stats) stats in
            match
              Velodrome_stream.Driver.run ?progress ?every:stats ?live_nodes
                backends src
            with
            | events, warnings -> (names, events, warnings, None)
            | exception Velodrome_stream.Driver.Interrupted { events; error }
              ->
              (* The prefix before the damage is a real trace: keep its
                 event count and warnings and report them below. *)
              (names, events, List.concat_map Backend.warnings backends,
               Some error))
      with
      | exception Velodrome_trace.Trace_io.Syntax_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" file line msg;
        exit 2
      | exception Velodrome_trace.Trace_codec.Corrupt msg ->
        Printf.eprintf "%s: corrupt binary trace: %s\n" file msg;
        exit 2
      | names, events, warnings, partial ->
        let warnings = Warning.dedup_by_label warnings in
        (match partial with
        | None ->
          report_trace_result fmt file events names warnings;
          exit_violations warnings
        | Some error ->
          (* Partial stats before the exit-2 diagnostic: a truncated
             stream's replayed prefix still counts. *)
          if events > 0 then
            report_trace_result ~partial:true fmt file events names warnings;
          (match error with
          | Velodrome_trace.Trace_io.Syntax_error (line, msg) ->
            Printf.eprintf "%s:%d: %s\n" file line msg
          | Velodrome_trace.Trace_codec.Corrupt msg ->
            Printf.eprintf "%s: corrupt binary trace: %s\n" file msg
          | e -> raise e);
          exit 2)
    end
    else begin
      let names, trace = load_trace file in
      let backends = List.filter_map (mk_backend names) analyses in
      let warnings =
        Warning.dedup_by_label (Backend.run_trace backends trace)
      in
      report_trace_result fmt file
        (Velodrome_trace.Trace.length trace)
        names warnings;
      exit_violations warnings
    end
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:"Replay a recorded trace through the analyses." ~exits)
    Term.(const run $ file $ analyses_arg $ stream $ stats $ format_arg)

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"INPUT" ~doc:"Trace file to convert (text or binary).")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUTPUT"
          ~doc:"Destination (binary when named *.velb, text otherwise).")
  in
  let to_format =
    Arg.(
      value
      & opt (some (enum [ ("binary", true); ("text", false) ])) None
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:"Force the output format: binary or text.")
  in
  let run input output to_format =
    let names, trace = load_trace input in
    let binary =
      match to_format with Some b -> b | None -> binary_path output
    in
    if binary then
      Velodrome_trace.Trace_codec.write_file names trace output
    else Velodrome_trace.Trace_io.write_file names trace output;
    Printf.printf "converted %s (%d events) to %s (%s)\n" input
      (Velodrome_trace.Trace.length trace)
      output
      (if binary then "binary" else "text")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a trace between the text and binary formats.")
    Term.(const run $ input $ output $ to_format)

let minimize_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A recorded trace file.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o" ] ~docv:"FILE" ~doc:"Write the minimized trace here.")
  in
  let run file out =
    let names, trace = load_trace file in
    if Velodrome_oracle.Oracle.serializable trace then begin
      Printf.printf "%s is serializable; nothing to minimize.\n" file;
      exit 0
    end;
    let small = Velodrome_oracle.Minimize.ddmin trace in
    Printf.printf "minimized %d operations to %d:\n"
      (Velodrome_trace.Trace.length trace)
      (Velodrome_trace.Trace.length small);
    print_string (Velodrome_trace.Trace_io.to_string names small);
    Option.iter
      (fun path -> Velodrome_trace.Trace_io.write_file names small path)
      out
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:
        "Shrink a non-serializable trace to a 1-minimal witness (delta \
         debugging).")
    Term.(const run $ file $ out)

(* --- print ------------------------------------------------------------------ *)

let print_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload to print as .vel source.")
  in
  let run name size =
    match Workload.find name with
    | None ->
      Printf.eprintf "unknown workload %S\n" name;
      exit 2
    | Some w ->
      print_string
        (Velodrome_lang.Printer.to_string (w.Workload.build size))
  in
  Cmd.v
    (Cmd.info "print"
       ~doc:"Print a workload program in the .vel core form.")
    Term.(const run $ workload $ size_arg)

(* --- fuzz ------------------------------------------------------------------- *)

let fuzz_cmd =
  let count =
    Arg.(
      value & opt int 2000
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Random traces to check.")
  in
  let dense =
    Arg.(
      value & flag
      & info [ "dense" ] ~doc:"High-contention trace shape (2 vars, 1 lock).")
  in
  let run count seed dense =
    let open Velodrome_trace in
    let cfg =
      if dense then
        {
          Gen.default with
          threads = 4;
          vars = 2;
          locks = 1;
          steps = 60;
          max_depth = 3;
        }
      else Gen.default
    in
    let rng = Velodrome_util.Rng.create seed in
    let mismatches = ref 0 in
    for k = 1 to count do
      let tr = Gen.run rng cfg in
      let names = Names.create () in
      let eng = Velodrome_core.Engine.create names in
      let basic = Velodrome_core.Basic.create names in
      Trace.iteri
        (fun index op ->
          let ev = Event.make ~index op in
          Velodrome_core.Engine.on_event eng ev;
          Velodrome_core.Basic.on_event basic ev)
        tr;
      let oracle = not (Velodrome_oracle.Oracle.serializable tr) in
      let engine = Velodrome_core.Engine.has_error eng in
      let fig2 = Velodrome_core.Basic.has_error basic in
      if engine <> oracle || fig2 <> oracle then begin
        incr mismatches;
        Printf.printf
          "MISMATCH on trace %d: oracle=%b engine=%b basic=%b\n%s\n" k oracle
          engine fig2
          (Trace_io.to_string names tr)
      end
    done;
    if !mismatches = 0 then
      Printf.printf
        "fuzz: %d random traces, engine = basic = oracle on all of them\n"
        count
    else begin
      Printf.printf "fuzz: %d mismatches out of %d traces\n" !mismatches count;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
        "Differential fuzzing: random well-formed traces through both \
         engines and the offline oracle.")
    Term.(const run $ count $ seed_arg $ dense)

(* --- tables and studies --------------------------------------------------- *)

let repeats_arg =
  Arg.(
    value & opt int 3
    & info [ "repeats" ] ~docv:"N" ~doc:"Timing repetitions (median).")

let table1_cmd =
  let run size seed repeats =
    let rows = Velodrome_harness.Table1.run ~size ~seed ~repeats () in
    Format.printf "Table 1: slowdowns and happens-before node statistics@.";
    Velodrome_harness.Table1.print Format.std_formatter rows
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate Table 1.")
    Term.(const run $ size_arg $ seed_arg $ repeats_arg)

let seeds_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 3; 4; 5 ]
    & info [ "seeds" ] ~docv:"LIST" ~doc:"Scheduler seeds (one run each).")

let table2_cmd =
  let run size seeds adversarial =
    let rows = Velodrome_harness.Table2.run ~size ~seeds ~adversarial () in
    Format.printf
      "Table 2: warnings with all methods assumed atomic (%d runs each)@."
      (List.length seeds);
    Velodrome_harness.Table2.print Format.std_formatter rows
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Regenerate Table 2.")
    Term.(const run $ size_arg $ seeds_arg $ adversarial_arg)

let study_cmd =
  let part =
    Arg.(
      value
      & opt string "all"
      & info [ "part" ] ~docv:"PART"
          ~doc:"coverage, injection, singlecore, agreement, or all.")
  in
  let run size seeds part =
    if part = "coverage" || part = "all" then begin
      Format.printf "Study S2: adversarial scheduling coverage@.";
      Velodrome_harness.Study.print_coverage Format.std_formatter
        (Velodrome_harness.Study.coverage ~size ~seeds ())
    end;
    if part = "injection" || part = "all" then begin
      Format.printf "Study S3: injected synchronization defects@.";
      Velodrome_harness.Study.print_injection Format.std_formatter
        (Velodrome_harness.Study.injection ~size ~seeds ())
    end;
    if part = "singlecore" || part = "all" then begin
      Format.printf "Study S4: single-core scheduling sensitivity@.";
      Velodrome_harness.Study.print_single_core Format.std_formatter
        (Velodrome_harness.Study.single_core ~size ~seeds ())
    end;
    if part = "agreement" || part = "all" then begin
      Format.printf "Study A1: three-way engine agreement@.";
      Velodrome_harness.Study.print_agreement Format.std_formatter
        (Velodrome_harness.Study.agreement ~size ~seeds ())
    end
  in
  Cmd.v
    (Cmd.info "study" ~doc:"Adversarial scheduling studies.")
    Term.(const run $ size_arg $ seeds_arg $ part)

(* --- multicore serving ---------------------------------------------------- *)

module Serve = Velodrome_serve.Serve

let serve_cmd =
  let targets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "Trace files, or directories scanned (non-recursively) for \
             *.velb and *.trace entries.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. Defaults to the recommended domain count, \
             clamped to the number of streams.")
  in
  let queue_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Job-queue capacity, rounded up to a power of two (default: \
             2*jobs). Bounds resident streams at capacity + jobs.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Report per-stream timings and a pool summary to stderr.")
  in
  let serve_analyses_arg =
    Arg.(
      value
      & opt (list string) [ "velodrome" ]
      & info [ "analysis"; "a"; "backend" ] ~docv:"LIST"
          ~doc:
            "Comma-separated back-ends: velodrome, velodrome-basic, aero, \
             atomizer, eraser, hb, fasttrack, 2pl, 2pl-strict, empty \
             (default: velodrome).")
  in
  let run targets analyses jobs queue stats fmt =
    (* Reject unknown back-ends before spawning anything. *)
    let scratch = Velodrome_trace.Names.create () in
    List.iter
      (fun a ->
        match mk_backend scratch a with
        | Some _ -> ()
        | None ->
          Printf.eprintf "unknown analysis %S\n" a;
          exit 2)
      analyses;
    let paths =
      match Serve.expand_targets targets with
      | Ok paths -> paths
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    let backends names = List.filter_map (mk_backend names) analyses in
    let total = List.length paths in
    (* Per-stream output is byte-identical to [check-trace FILE] (same
       renderer, same JSON objects), and the ordered merge emits it in
       submission order — so the whole stdout is independent of --jobs
       and equal to a sequential sweep. *)
    let print_views = function
      | [] -> print_endline "No warnings."
      | ws ->
        Printf.printf "%d warning(s):\n" (List.length ws);
        List.iter
          (fun (w : Serve.warning_view) -> Printf.printf "  %s\n" w.Serve.human)
          ws
    in
    let json_doc path events warnings extra =
      let open Velodrome_util.Json in
      Obj
        ([
           ("file", String path);
           ("events", Int events);
           ( "warnings",
             List
               (List.map
                  (fun (w : Serve.warning_view) -> w.Serve.json)
                  warnings) );
         ]
        @ extra)
    in
    let print_result (r : Serve.result) =
      (match (fmt, r.Serve.outcome) with
      | `Human, Serve.Checked { events; warnings } ->
        Printf.printf "%s: %d operations\n" r.Serve.path events;
        print_views warnings
      | `Human, Serve.Failed { events; warnings; message } ->
        if events > 0 then begin
          Printf.printf "%s: %d operations (partial: stream truncated)\n"
            r.Serve.path events;
          print_views warnings
        end;
        Printf.eprintf "%s\n" message
      | `Json, Serve.Checked { events; warnings } ->
        print_endline
          (Velodrome_util.Json.to_string (json_doc r.Serve.path events warnings []))
      | `Json, Serve.Failed { events; warnings; message } ->
        if events > 0 then
          print_endline
            (Velodrome_util.Json.to_string
               (json_doc r.Serve.path events warnings
                  [ ("partial", Velodrome_util.Json.Bool true) ]));
        Printf.eprintf "%s\n" message);
      if stats then
        Printf.eprintf "[serve] %d/%d %s: %d events, %d warnings, wait %.2fms, check %.2fms\n%!"
          (r.Serve.index + 1) total r.Serve.path
          (match r.Serve.outcome with
          | Serve.Checked { events; _ } | Serve.Failed { events; _ } -> events)
          (match r.Serve.outcome with
          | Serve.Checked { warnings; _ } | Serve.Failed { warnings; _ } ->
            List.length warnings)
          (Int64.to_float r.Serve.wait_ns /. 1e6)
          (Int64.to_float r.Serve.check_ns /. 1e6)
    in
    let s = Serve.run ?jobs ?queue_capacity:queue ~backends ~on_result:print_result paths in
    if stats then begin
      let secs = Int64.to_float s.Serve.elapsed_ns /. 1e9 in
      Printf.eprintf
        "[serve] %d streams, %d events, %d warnings, %d failed on %d domain(s): %.0f events/s, queue wait mean %.2fms, max resident %d (bound %d)\n%!"
        s.Serve.streams s.Serve.events s.Serve.warnings s.Serve.failed
        s.Serve.jobs
        (if secs > 0. then float_of_int s.Serve.events /. secs else 0.)
        (if s.Serve.streams > 0 then
           Int64.to_float s.Serve.queue_wait_ns /. 1e6
           /. float_of_int s.Serve.streams
         else 0.)
        s.Serve.max_resident
        (s.Serve.queue_capacity + s.Serve.jobs)
    end;
    if s.Serve.failed > 0 then exit 2
    else if s.Serve.warnings > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Check many trace streams concurrently on a pool of worker \
          domains, with deterministic, submission-ordered output."
       ~exits)
    Term.(
      const run $ targets $ serve_analyses_arg $ jobs_arg $ queue_arg
      $ stats_flag $ format_arg)

let () =
  let doc = "sound and complete dynamic atomicity checking (PLDI 2008)" in
  let info = Cmd.info "velodrome" ~version:"1.0.0" ~doc ~exits in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           list_cmd; run_cmd; check_cmd; analyze_cmd; predict_cmd;
           races_cmd; print_cmd;
           record_cmd; check_trace_cmd; serve_cmd; convert_cmd; minimize_cmd;
           fuzz_cmd;
           table1_cmd; table2_cmd; study_cmd;
         ])
  in
  (* Fold cmdliner's usage-error code into the documented 2. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
