(* Schema check for the benchmark artifacts (BENCH_stream.json,
   BENCH_engine.json, BENCH_statics.json). CI runs the bench smoke pass
   and then this validator, so a refactor that breaks an emitter — wrong
   field name, NaN printed as "nan", truncated file — fails the build
   instead of silently uploading a malformed artifact.

   Usage: validate_bench.exe FILE KIND [FILE KIND ...]
   where KIND is one of stream | engine | statics. *)

open Velodrome_util

type field_ty = S | I | N | B
(* N = numeric: integral floats print as JSON integers, so both [Int] and
   [Float] are accepted. *)

let schema = function
  | "stream" ->
    [
      ("fixture", S);
      ("size", S);
      ("events", I);
      ("text_bytes", I);
      ("binary_bytes", I);
      ("text_parse_events_per_sec", N);
      ("binary_decode_events_per_sec", N);
      ("stream_check_events_per_sec", N);
      ("inmem_check_events_per_sec", N);
    ]
  | "engine" ->
    [
      ("fixture", S);
      ("size", S);
      ("events", I);
      ("engine_events_per_sec", N);
      ("engine_bytes_per_event", N);
      ("basic_events_per_sec", N);
      ("basic_bytes_per_event", N);
      ("warnings", I);
    ]
  | "statics" ->
    [
      ("fixture", S);
      ("size", S);
      ("blocks", I);
      ("proved", I);
      ("events_total", I);
      ("events_suppressed", I);
      ("suppressed_pct", N);
      ("unfiltered_sec", N);
      ("filtered_sec", N);
      ("speedup", N);
      ("warnings_identical", B);
    ]
  | kind -> failwith (Printf.sprintf "unknown bench kind %S" kind)

let type_ok ty v =
  match (ty, v) with
  | S, Json.String _ -> true
  | I, Json.Int _ -> true
  | N, (Json.Int _ | Json.Float _) -> true
  | B, Json.Bool _ -> true
  | _ -> false

let finite = function
  | Json.Float f -> Float.is_finite f
  | _ -> true

let ty_name = function S -> "string" | I -> "int" | N -> "number" | B -> "bool"

let check_row ~file ~kind i row =
  let fields =
    match row with
    | Json.Obj fields -> fields
    | _ -> failwith (Printf.sprintf "%s: row %d is not an object" file i)
  in
  List.iter
    (fun (name, ty) ->
      match List.assoc_opt name fields with
      | None ->
        failwith
          (Printf.sprintf "%s: row %d (%s) is missing field %S" file i kind
             name)
      | Some v ->
        if not (type_ok ty v) then
          failwith
            (Printf.sprintf "%s: row %d field %S is not a %s" file i name
               (ty_name ty));
        if not (finite v) then
          failwith
            (Printf.sprintf "%s: row %d field %S is not finite" file i name))
    (schema kind)

let check_file file kind =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg -> failwith msg
  in
  match Json.of_string contents with
  | Error msg -> failwith (Printf.sprintf "%s: parse error: %s" file msg)
  | Ok (Json.List []) -> failwith (Printf.sprintf "%s: no rows" file)
  | Ok (Json.List rows) ->
    List.iteri (check_row ~file ~kind) rows;
    Printf.printf "%s: %d %s rows ok\n" file (List.length rows) kind
  | Ok _ -> failwith (Printf.sprintf "%s: top level is not an array" file)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec pairs = function
    | [] -> []
    | file :: kind :: rest -> (file, kind) :: pairs rest
    | [ _ ] ->
      prerr_endline "usage: validate_bench.exe FILE KIND [FILE KIND ...]";
      exit 2
  in
  match pairs args with
  | [] ->
    prerr_endline "usage: validate_bench.exe FILE KIND [FILE KIND ...]";
    exit 2
  | specs -> (
    try List.iter (fun (file, kind) -> check_file file kind) specs
    with Failure msg ->
      Printf.eprintf "validate_bench: %s\n" msg;
      exit 1)
