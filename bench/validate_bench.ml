(* Schema check for the benchmark and report artifacts (BENCH_*.json,
   plus the race and analyze reports the CLI emits). CI runs the bench
   smoke pass and the analyze/races commands and then this validator, so
   a refactor that breaks an emitter — wrong field name, NaN printed as
   "nan", truncated file — fails the build instead of silently uploading
   a malformed artifact.

   Usage: validate_bench.exe FILE KIND [FILE KIND ...]
   where KIND is one of stream | engine | statics (flat row tables) or
   races | analyze | predict (nested report documents). *)

open Velodrome_util

type field_ty = S | I | N | B
(* N = numeric: integral floats print as JSON integers, so both [Int] and
   [Float] are accepted. *)

let schema = function
  | "stream" ->
    [
      ("fixture", S);
      ("size", S);
      ("events", I);
      ("text_bytes", I);
      ("binary_bytes", I);
      ("text_parse_events_per_sec", N);
      ("binary_decode_events_per_sec", N);
      ("stream_check_events_per_sec", N);
      ("inmem_check_events_per_sec", N);
    ]
  | "engine" ->
    [
      ("fixture", S);
      ("size", S);
      ("events", I);
      ("aero_events_per_sec", N);
      ("aero_bytes_per_event", N);
      ("engine_events_per_sec", N);
      ("engine_bytes_per_event", N);
      ("basic_events_per_sec", N);
      ("basic_bytes_per_event", N);
      ("warnings", I);
    ]
  | "statics" ->
    [
      ("fixture", S);
      ("size", S);
      ("blocks", I);
      ("proved", I);
      ("proved_lipton", I);
      ("proved_cycle_free", I);
      ("may_violate", I);
      ("unknown", I);
      ("proved_global", I);
      ("proved_delta", I);
      ("races", I);
      ("dead_sites", I);
      ("race_pair_delta", I);
      ("proved_values_delta", I);
      ("analysis_ms", N);
      ("values_analysis_ms", N);
      ("events_total", I);
      ("events_suppressed", I);
      ("events_suppressed_lipton", I);
      ("events_suppressed_global", I);
      ("suppressed_pct", N);
      ("suppressed_pct_lipton", N);
      ("suppressed_pct_global", N);
      ("unfiltered_sec", N);
      ("filtered_sec", N);
      ("events_per_sec", N);
      ("speedup", N);
      ("warnings_identical", B);
    ]
  | "serve" ->
    [
      ("domains", I);
      ("cores", I);
      ("streams", I);
      ("events", I);
      ("warnings", I);
      ("events_per_sec", N);
      ("queue_wait_ms_mean", N);
      ("max_resident_streams", I);
      ("queue_capacity", I);
    ]
  | kind -> failwith (Printf.sprintf "unknown bench kind %S" kind)

let type_ok ty v =
  match (ty, v) with
  | S, Json.String _ -> true
  | I, Json.Int _ -> true
  | N, (Json.Int _ | Json.Float _) -> true
  | B, Json.Bool _ -> true
  | _ -> false

let finite = function
  | Json.Float f -> Float.is_finite f
  | _ -> true

let ty_name = function S -> "string" | I -> "int" | N -> "number" | B -> "bool"

let check_row ~file ~kind i row =
  let fields =
    match row with
    | Json.Obj fields -> fields
    | _ -> failwith (Printf.sprintf "%s: row %d is not an object" file i)
  in
  List.iter
    (fun (name, ty) ->
      match List.assoc_opt name fields with
      | None ->
        failwith
          (Printf.sprintf "%s: row %d (%s) is missing field %S" file i kind
             name)
      | Some v ->
        if not (type_ok ty v) then
          failwith
            (Printf.sprintf "%s: row %d field %S is not a %s" file i name
               (ty_name ty));
        if not (finite v) then
          failwith
            (Printf.sprintf "%s: row %d field %S is not finite" file i name))
    (schema kind)

(* --- nested report documents (races, analyze) ----------------------------- *)

let fail ctx msg = failwith (Printf.sprintf "%s: %s" ctx msg)

(* BENCH_serve.json: beyond field shapes, the sweep must witness the
   serve-mode claims. Determinism: every domain count replays the same
   corpus, so events and warnings must match exactly across rows.
   Bounded memory: the resident-stream high-water mark can never exceed
   the backpressure window (queue capacity + worker domains). Scaling:
   judged against the cores the host actually offers — full 3x at 8+
   cores, pro-rated below, and on a single core only a sanity bound
   (the pool must not collapse), since parallel speedup there is
   physically impossible. *)
let check_serve_rows file rows =
  let ctx = file in
  let fields_of = function
    | Json.Obj f -> f
    | _ -> fail ctx "row is not an object"
  in
  let int_of r name =
    match List.assoc_opt name (fields_of r) with
    | Some (Json.Int n) -> n
    | _ -> fail ctx (Printf.sprintf "field %S is not an int" name)
  in
  let num_of r name =
    match List.assoc_opt name (fields_of r) with
    | Some (Json.Int n) -> float_of_int n
    | Some (Json.Float f) -> f
    | _ -> fail ctx (Printf.sprintf "field %S is not numeric" name)
  in
  let base = List.hd rows in
  List.iter
    (fun r ->
      if int_of r "streams" <> int_of base "streams" then
        fail ctx "streams differ across domain counts";
      if int_of r "events" <> int_of base "events" then
        fail ctx
          (Printf.sprintf
             "nondeterministic sweep: %d domains replayed %d events, %d \
              domains replayed %d"
             (int_of base "domains") (int_of base "events") (int_of r "domains")
             (int_of r "events"));
      if int_of r "warnings" <> int_of base "warnings" then
        fail ctx
          (Printf.sprintf
             "nondeterministic sweep: warning counts differ (%d vs %d)"
             (int_of base "warnings") (int_of r "warnings"));
      let bound = int_of r "queue_capacity" + int_of r "domains" in
      if int_of r "max_resident_streams" > bound then
        fail ctx
          (Printf.sprintf
             "backpressure breached: %d resident streams at %d domains, \
              bound %d"
             (int_of r "max_resident_streams") (int_of r "domains") bound);
      if num_of r "events_per_sec" <= 0. then
        fail ctx "events_per_sec is not positive";
      if num_of r "queue_wait_ms_mean" < 0. then
        fail ctx "queue_wait_ms_mean is negative")
    rows;
  let row_at d = List.find_opt (fun r -> int_of r "domains" = d) rows in
  let widest =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when int_of b "domains" >= int_of r "domains" -> acc
        | _ -> Some r)
      None rows
  in
  match (row_at 1, widest) with
  | Some one, Some wide when int_of wide "domains" > 1 ->
    let speedup = num_of wide "events_per_sec" /. num_of one "events_per_sec" in
    let cores = int_of one "cores" in
    let floor_required =
      if cores >= 8 then 3.0
      else if cores >= 4 then 2.0
      else if cores >= 2 then 1.2
      else 0.1 (* single core: the pool must not collapse under overhead *)
    in
    if speedup < floor_required then
      fail ctx
        (Printf.sprintf
           "scaling gate: %d-domain throughput is %.2fx the 1-domain run, \
            need >= %.1fx on %d core(s)"
           (int_of wide "domains") speedup floor_required cores);
    Printf.printf "%s: scaling %.2fx at %d domains on %d core(s) (gate %.1fx)\n"
      file speedup (int_of wide "domains") cores floor_required
  | _ -> fail ctx "sweep must include a 1-domain row and a multi-domain row"

let obj_fields ctx = function
  | Json.Obj fields -> fields
  | _ -> fail ctx "not an object"

let get ctx fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> fail ctx (Printf.sprintf "missing field %S" name)

let expect ctx ty v =
  if not (type_ok ty v) then
    fail ctx (Printf.sprintf "expected a %s" (ty_name ty))

let expect_field ctx fields name ty =
  expect (ctx ^ "." ^ name) ty (get ctx fields name)

let check_ints ctx fields names =
  List.iter (fun n -> expect_field ctx fields n I) names

let check_position ctx = function
  | Json.Null -> ()
  | v ->
    let f = obj_fields ctx v in
    check_ints ctx f [ "line"; "col" ]

let check_race_access ctx v =
  let f = obj_fields ctx v in
  expect_field ctx f "site" S;
  (match get ctx f "access" with
  | Json.String ("read" | "write") -> ()
  | _ -> fail ctx "access is not \"read\" or \"write\"");
  (match get ctx f "locks" with
  | Json.List ls -> List.iter (expect (ctx ^ ".locks[]") S) ls
  | _ -> fail ctx "locks is not an array");
  (match get ctx f "atomic" with
  | Json.Null | Json.String _ -> ()
  | _ -> fail ctx "atomic is not a string or null");
  check_position (ctx ^ ".position") (get ctx f "position")

let check_races_doc ctx v =
  let f = obj_fields ctx v in
  (match List.assoc_opt "file" f with
  | None -> ()
  | Some v -> expect (ctx ^ ".file") S v);
  let pairs =
    match get ctx f "pairs" with
    | Json.List ps -> ps
    | _ -> fail ctx "pairs is not an array"
  in
  List.iteri
    (fun i p ->
      let ctx = Printf.sprintf "%s.pairs[%d]" ctx i in
      let pf = obj_fields ctx p in
      expect_field ctx pf "var" S;
      expect_field ctx pf "explanation" S;
      check_race_access (ctx ^ ".a") (get ctx pf "a");
      check_race_access (ctx ^ ".b") (get ctx pf "b"))
    pairs;
  let s = obj_fields (ctx ^ ".summary") (get ctx f "summary") in
  check_ints (ctx ^ ".summary") s
    [ "pairs"; "racy_vars"; "access_sites"; "blocks"; "proved" ];
  (* Internal consistency: the summary must count the pairs array. *)
  match List.assoc_opt "pairs" s with
  | Some (Json.Int n) when n <> List.length pairs ->
    fail ctx
      (Printf.sprintf "summary.pairs = %d but %d pairs listed" n
         (List.length pairs))
  | _ -> ()

let check_analyze_doc ctx v =
  let f = obj_fields ctx v in
  (match List.assoc_opt "file" f with
  | None -> ()
  | Some v -> expect (ctx ^ ".file") S v);
  (match get ctx f "blocks" with
  | Json.List bs ->
    List.iteri
      (fun i b ->
        let ctx = Printf.sprintf "%s.blocks[%d]" ctx i in
        let bf = obj_fields ctx b in
        expect_field ctx bf "label" S;
        (match get ctx bf "verdict" with
        | Json.String ("proved-atomic" | "may-violate" | "unknown") -> ()
        | _ ->
          fail ctx
            "verdict is not \"proved-atomic\", \"may-violate\" or \
             \"unknown\"");
        match get ctx bf "proof" with
        | Json.Null | Json.String ("lipton" | "cycle-free") -> ()
        | _ -> fail ctx "proof is not \"lipton\", \"cycle-free\" or null")
      bs
  | _ -> fail ctx "blocks is not an array");
  let s = obj_fields (ctx ^ ".summary") (get ctx f "summary") in
  check_ints (ctx ^ ".summary") s
    [
      "blocks";
      "proved";
      "proved_lipton";
      "proved_cycle_free";
      "may_violate";
      "unknown";
      "race_pairs";
      "racy_vars";
      "dead_sites";
      "dead_branches";
    ];
  (match List.assoc_opt "values" f with
  | None | Some Json.Null -> ()
  | Some v ->
    let ctx = ctx ^ ".values" in
    let vf = obj_fields ctx v in
    (match get ctx vf "facts" with
    | Json.List _ -> ()
    | _ -> fail ctx "facts is not an array");
    match get ctx vf "dead_branches" with
    | Json.List _ -> ()
    | _ -> fail ctx "dead_branches is not an array");
  (match List.assoc_opt "gate" f with
  | None -> ()
  | Some g ->
    let ctx = ctx ^ ".gate" in
    let gf = obj_fields ctx g in
    check_ints ctx gf [ "schedules"; "dynamic_warnings" ];
    expect_field ctx gf "ok" B;
    (match get ctx gf "mismatches" with
    | Json.List _ -> ()
    | _ -> fail ctx "mismatches is not an array");
    (match get ctx gf "uncovered_blames" with
    | Json.List _ -> ()
    | _ -> fail ctx "uncovered_blames is not an array");
    (match get ctx gf "uncovered_races" with
    | Json.List _ -> ()
    | _ -> fail ctx "uncovered_races is not an array");
    match get ctx gf "value_violations" with
    | Json.List _ -> ()
    | _ -> fail ctx "value_violations is not an array");
  match List.assoc_opt "races" f with
  | None -> ()
  | Some r -> check_races_doc (ctx ^ ".races") r

(* BENCH_predict.json: the predictive-atomicity study artifact. Beyond
   field shapes, this enforces the artifact's two claims: zero
   uncertified predictions anywhere, and strict dominance — prediction
   from one observation finds strictly more unique violating blocks
   than the adversarial sweep. *)
let check_predict_doc ctx v =
  let f = obj_fields ctx v in
  let int_of ctx fields name =
    match get ctx fields name with
    | Json.Int n -> n
    | _ -> fail ctx (Printf.sprintf "field %S is not an int" name)
  in
  let check_counts ctx fields =
    check_ints ctx fields
      [
        "predicted";
        "certified";
        "uncertified";
        "observed_blamed";
        "adversarial_unique";
        "rr_plus_predicted_unique";
      ];
    if int_of ctx fields "uncertified" <> 0 then
      fail ctx "uncertified predictions present";
    if
      int_of ctx fields "certified" + int_of ctx fields "uncertified"
      <> int_of ctx fields "predicted"
    then fail ctx "certified + uncertified <> predicted"
  in
  let wl_rows =
    match get ctx f "workloads" with
    | Json.List rows -> rows
    | _ -> fail ctx "workloads is not an array"
  in
  if wl_rows = [] then fail ctx "no workload rows";
  List.iteri
    (fun i row ->
      let ctx = Printf.sprintf "%s.workloads[%d]" ctx i in
      let rf = obj_fields ctx row in
      expect_field ctx rf "fixture" S;
      check_ints ctx rf [ "blocks"; "may_violate"; "unpredicted" ];
      expect_field ctx rf "predict_ms" N;
      if not (finite (get ctx rf "predict_ms")) then
        fail ctx "predict_ms is not finite";
      check_counts ctx rf;
      if int_of ctx rf "predicted" > int_of ctx rf "may_violate" then
        fail ctx "more predictions than may-violate blocks")
    wl_rows;
  let pg = obj_fields (ctx ^ ".progen") (get ctx f "progen") in
  check_ints (ctx ^ ".progen") pg [ "programs"; "seed_start" ];
  expect_field (ctx ^ ".progen") pg "predict_ms_total" N;
  check_counts (ctx ^ ".progen") pg;
  let s = obj_fields (ctx ^ ".summary") (get ctx f "summary") in
  let sctx = ctx ^ ".summary" in
  check_ints sctx s [ "programs" ];
  check_counts sctx s;
  expect_field sctx s "strict_dominance" B;
  (* The summary must total the workload rows plus the progen sweep. *)
  let wl_sum name =
    List.fold_left
      (fun acc row -> acc + int_of ctx (obj_fields ctx row) name)
      0 wl_rows
  in
  List.iter
    (fun name ->
      if wl_sum name + int_of ctx pg name <> int_of sctx s name then
        fail sctx (Printf.sprintf "%s does not total workloads + progen" name))
    [ "predicted"; "certified"; "adversarial_unique"; "rr_plus_predicted_unique" ];
  if List.length wl_rows + int_of ctx pg "programs" <> int_of sctx s "programs"
  then fail sctx "programs does not total workloads + progen";
  let adv = int_of sctx s "adversarial_unique" in
  let rr = int_of sctx s "rr_plus_predicted_unique" in
  (match get sctx s "strict_dominance" with
  | Json.Bool b when b <> (rr > adv) ->
    fail sctx "strict_dominance does not match the counts"
  | _ -> ());
  if rr <= adv then
    fail sctx
      (Printf.sprintf
         "no strict dominance: rr_plus_predicted_unique %d <= \
          adversarial_unique %d"
         rr adv)

let check_report ~file kind doc =
  let check_doc =
    match kind with
    | "races" -> check_races_doc
    | "analyze" -> check_analyze_doc
    | "predict" -> check_predict_doc
    | _ -> assert false
  in
  match doc with
  | Json.List [] -> failwith (Printf.sprintf "%s: no documents" file)
  | Json.List docs ->
    List.iteri
      (fun i d -> check_doc (Printf.sprintf "%s: doc %d" file i) d)
      docs;
    Printf.printf "%s: %d %s documents ok\n" file (List.length docs) kind
  | doc ->
    check_doc file doc;
    Printf.printf "%s: 1 %s document ok\n" file kind

(* --- baseline diff (--baseline) -------------------------------------------- *)

(* The first slice of the continuous-bench item: diff a freshly
   regenerated BENCH_statics.json against the committed baseline and
   fail when the static pre-pass got markedly slower — more than 15%
   on the analysis wall time or on the filtered-engine throughput.
   Rows are matched on (fixture, size); fixtures present only on one
   side (a new workload, a retired one) are reported and skipped, so
   adding a fixture never requires a flag day. *)
let regression_threshold = 0.15

let load_rows file =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg -> failwith msg
  in
  match Json.of_string contents with
  | Error msg -> failwith (Printf.sprintf "%s: parse error: %s" file msg)
  | Ok (Json.List rows) -> rows
  | Ok _ -> failwith (Printf.sprintf "%s: top level is not an array" file)

let check_baseline ~baseline ~fresh =
  let str_of ctx r name =
    match r with
    | Json.Obj f -> (
      match List.assoc_opt name f with
      | Some (Json.String s) -> s
      | _ -> fail ctx (Printf.sprintf "field %S is not a string" name))
    | _ -> fail ctx "row is not an object"
  in
  let num_of ctx r name =
    match r with
    | Json.Obj f -> (
      match List.assoc_opt name f with
      | Some (Json.Int n) -> float_of_int n
      | Some (Json.Float x) -> x
      | _ -> fail ctx (Printf.sprintf "field %S is not numeric" name))
    | _ -> fail ctx "row is not an object"
  in
  let key ctx r = (str_of ctx r "fixture", str_of ctx r "size") in
  let base_rows = load_rows baseline in
  let fresh_rows = load_rows fresh in
  List.iteri (check_row ~file:fresh ~kind:"statics") fresh_rows;
  let regressions = ref [] in
  let compared = ref 0 in
  List.iter
    (fun fr ->
      let k = key fresh fr in
      match
        List.find_opt (fun br -> key baseline br = k) base_rows
      with
      | None ->
        Printf.printf "%s: %s/%s has no baseline row, skipped\n" fresh
          (fst k) (snd k)
      | Some br ->
        incr compared;
        let slower name =
          (* regression = fresh is worse; for times worse means larger,
             for throughput worse means smaller *)
          let b = num_of baseline br name and f = num_of fresh fr name in
          match name with
          | "events_per_sec" ->
            if b > 0. && f < b *. (1. -. regression_threshold) then
              Some (Printf.sprintf "%s %.3g -> %.3g (-%.0f%%)" name b f
                      (100. *. (b -. f) /. b))
            else None
          | _ ->
            if b > 0. && f > b *. (1. +. regression_threshold) then
              Some (Printf.sprintf "%s %.3g -> %.3g (+%.0f%%)" name b f
                      (100. *. (f -. b) /. b))
            else None
        in
        List.iter
          (fun name ->
            match slower name with
            | Some msg ->
              regressions :=
                Printf.sprintf "%s/%s: %s" (fst k) (snd k) msg
                :: !regressions
            | None -> ())
          [ "analysis_ms"; "events_per_sec" ])
    fresh_rows;
  if !compared = 0 then
    failwith
      (Printf.sprintf "%s vs %s: no comparable rows (size mismatch?)" fresh
         baseline);
  match List.rev !regressions with
  | [] ->
    Printf.printf "%s: no >%.0f%% regression vs %s (%d rows compared)\n"
      fresh (100. *. regression_threshold) baseline !compared
  | rs ->
    List.iter (fun r -> Printf.eprintf "validate_bench: regression: %s\n" r) rs;
    failwith
      (Printf.sprintf "%d bench regression(s) vs baseline %s"
         (List.length rs) baseline)

let check_file file kind =
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error msg -> failwith msg
  in
  match Json.of_string contents with
  | Error msg -> failwith (Printf.sprintf "%s: parse error: %s" file msg)
  | Ok doc when kind = "races" || kind = "analyze" || kind = "predict" ->
    check_report ~file kind doc
  | Ok (Json.List []) -> failwith (Printf.sprintf "%s: no rows" file)
  | Ok (Json.List rows) ->
    List.iteri (check_row ~file ~kind) rows;
    if kind = "serve" then check_serve_rows file rows;
    Printf.printf "%s: %d %s rows ok\n" file (List.length rows) kind
  | Ok _ -> failwith (Printf.sprintf "%s: top level is not an array" file)

let usage () =
  prerr_endline
    "usage: validate_bench.exe FILE KIND [FILE KIND ...]\n\
    \       validate_bench.exe --baseline BASELINE FRESH";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--baseline"; baseline; fresh ] -> (
    try check_baseline ~baseline ~fresh
    with Failure msg ->
      Printf.eprintf "validate_bench: %s\n" msg;
      exit 1)
  | "--baseline" :: _ -> usage ()
  | _ -> (
    let rec pairs = function
      | [] -> []
      | file :: kind :: rest -> (file, kind) :: pairs rest
      | [ _ ] -> usage ()
    in
    match pairs args with
    | [] -> usage ()
    | specs -> (
      try List.iter (fun (file, kind) -> check_file file kind) specs
      with Failure msg ->
        Printf.eprintf "validate_bench: %s\n" msg;
        exit 1))
