(* The benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks — one Test.make per table/figure of the
      paper's evaluation, plus ablation benches for the design choices
      DESIGN.md calls out (merge on/off, GC on/off, packed steps vs the
      basic engine). These measure the per-run cost of each experiment's
      core computation.

   2. Full regeneration of every table and study, printed in the paper's
      row format (Table 1, Table 2, the adversarial-coverage study S2 and
      the defect-injection study S3).

   Run with: dune exec bench/main.exe *)

(* Raw monotonic timestamps via the shared util funnel; aliased before
   the opens because Toolkit has a [Monotonic_clock] MEASURE instance of
   its own and the two must not be confused. *)
module Mclock = Velodrome_util.Mclock

open Bechamel
open Toolkit
open Velodrome_trace
open Velodrome_analysis
open Velodrome_workloads

(* --- workload fixtures ---------------------------------------------------- *)

let fixture name =
  let w = Option.get (Workload.find name) in
  let program = w.Workload.build Workload.Medium in
  (w, program)

(* A recorded trace for offline replay benches (engine ablations). *)
let recorded =
  lazy
    (let _, program = fixture "multiset" in
     let res =
       Velodrome_harness.Common.run_once ~seed:42 ~record_trace:true program
         (fun _ -> [])
     in
     ( program.Velodrome_sim.Ast.names,
       Trace.to_list (Option.get res.Velodrome_sim.Run.trace) ))

let replay ~merge ~names ops =
  let eng =
    Velodrome_core.Engine.create
      ~config:{ Velodrome_core.Engine.merge; record_graphs = false }
      names
  in
  List.iteri
    (fun index op -> Velodrome_core.Engine.on_event eng (Event.make ~index op))
    ops;
  Velodrome_core.Engine.finish eng;
  eng

let replay_basic ~gc ~names ops =
  let eng =
    Velodrome_core.Basic.create ~config:{ Velodrome_core.Basic.gc } names
  in
  List.iteri
    (fun index op -> Velodrome_core.Basic.on_event eng (Event.make ~index op))
    ops;
  Velodrome_core.Basic.finish eng;
  eng

let run_with name backend_of_names =
  let _, program = fixture name in
  ignore
    (Velodrome_harness.Common.run_once ~seed:42 program backend_of_names)

(* --- Bechamel tests: one per table / figure ------------------------------- *)

(* Table 1 (left half): analysis slowdowns. One representative workload
   run per analysis; the full 15-row table is printed below. *)
let test_table1_slowdowns =
  Test.make_grouped ~name:"table1/slowdowns"
    [
      Test.make ~name:"base" (Staged.stage (fun () -> run_with "multiset" (fun _ -> [])));
      Test.make ~name:"empty"
        (Staged.stage (fun () ->
             run_with "multiset" (fun n -> [ Backend.make (module Empty) n ])));
      Test.make ~name:"eraser"
        (Staged.stage (fun () ->
             run_with "multiset" (fun n ->
                 [ Backend.make (Velodrome_eraser.Eraser.backend ()) n ])));
      Test.make ~name:"atomizer"
        (Staged.stage (fun () ->
             run_with "multiset" (fun n ->
                 [ Backend.make (Velodrome_atomizer.Atomizer.backend ()) n ])));
      Test.make ~name:"velodrome"
        (Staged.stage (fun () ->
             run_with "multiset" (fun n ->
                 [ Backend.make (Velodrome_core.Engine.backend ()) n ])));
      Test.make ~name:"hb"
        (Staged.stage (fun () ->
             run_with "multiset" (fun n ->
                 [ Backend.make (Velodrome_hbrace.Hbrace.backend ()) n ])));
    ]

(* Table 1 (right half): node allocation — the merge ablation. *)
let test_table1_nodes =
  Test.make_grouped ~name:"table1/nodes"
    [
      Test.make ~name:"replay-without-merge"
        (Staged.stage (fun () ->
             let names, ops = Lazy.force recorded in
             ignore (replay ~merge:false ~names ops)));
      Test.make ~name:"replay-with-merge"
        (Staged.stage (fun () ->
             let names, ops = Lazy.force recorded in
             ignore (replay ~merge:true ~names ops)));
    ]

(* Ablations: the basic Figure 2 engine with and without reference
   counting, against the optimized engine on the same trace. *)
let test_ablation_engines =
  Test.make_grouped ~name:"ablation/engines"
    [
      Test.make ~name:"basic-gc"
        (Staged.stage (fun () ->
             let names, ops = Lazy.force recorded in
             ignore (replay_basic ~gc:true ~names ops)));
      Test.make ~name:"basic-nogc"
        (Staged.stage (fun () ->
             let names, ops = Lazy.force recorded in
             ignore (replay_basic ~gc:false ~names ops)));
      Test.make ~name:"optimized"
        (Staged.stage (fun () ->
             let names, ops = Lazy.force recorded in
             ignore (replay ~merge:true ~names ops)));
    ]

(* Table 2: the warning-classification pipeline on one workload/seed. *)
let test_table2 =
  Test.make ~name:"table2/warnings"
    (Staged.stage (fun () ->
         run_with "multiset" (fun n ->
             [
               Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
               Backend.make (Velodrome_core.Engine.backend ()) n;
             ])))

(* Ablation: RoadRunner's thread-local filtering ("dramatically improves
   the performance of the analyses, although ... slightly unsound"). *)
let test_ablation_threadlocal =
  Test.make_grouped ~name:"ablation/thread-local-filter"
    [
      Test.make ~name:"velodrome-unfiltered"
        (Staged.stage (fun () ->
             run_with "jbb" (fun n ->
                 [ Backend.make (Velodrome_core.Engine.backend ()) n ])));
      Test.make ~name:"velodrome-filtered"
        (Staged.stage (fun () ->
             run_with "jbb" (fun n ->
                 [
                   Filters.thread_local
                     (Backend.make (Velodrome_core.Engine.backend ()) n);
                 ])));
    ]

(* Ablation: the §5 pause-policy alternatives on one adversarial run. *)
let adversarial_multiset pause_on =
  let _, program = fixture "multiset" in
  let config =
    {
      Velodrome_sim.Run.default_config with
      policy = Velodrome_sim.Run.Random 42;
      adversarial = true;
      pause_slots = 500;
      pause_on;
    }
  in
  ignore
    (Velodrome_sim.Run.run ~config program
       [
         Backend.make
           (Velodrome_atomizer.Atomizer.backend ())
           program.Velodrome_sim.Ast.names;
         Backend.make
           (Velodrome_core.Engine.backend ())
           program.Velodrome_sim.Ast.names;
       ])

let test_ablation_pause_policy =
  Test.make_grouped ~name:"ablation/pause-policy"
    [
      Test.make ~name:"pause-all"
        (Staged.stage (fun () ->
             adversarial_multiset Velodrome_sim.Run.Pause_all));
      Test.make ~name:"pause-writes-only"
        (Staged.stage (fun () ->
             adversarial_multiset Velodrome_sim.Run.Pause_writes_only));
    ]

(* Study S3: one injected-defect detection run. *)
let test_study_injection =
  Test.make ~name:"study/injection"
    (Staged.stage (fun () ->
         let w = Option.get (Workload.find "elevator") in
         match Velodrome_inject.Inject.mutants w Workload.Medium with
         | m :: _ ->
           ignore
             (Velodrome_harness.Common.run_once ~seed:1 ~adversarial:true
                m.Velodrome_inject.Inject.program
                (fun n ->
                  [
                    Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
                    Backend.make (Velodrome_core.Engine.backend ()) n;
                  ]))
         | [] -> ()))

(* --- Bechamel driver ------------------------------------------------------- *)

let benchmark () =
  let tests =
    Test.make_grouped ~name:"velodrome"
      [
        test_table1_slowdowns;
        test_table1_nodes;
        test_ablation_engines;
        test_ablation_threadlocal;
        test_ablation_pause_policy;
        test_table2;
        test_study_injection;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Printf.printf "%-45s %15s\n" "benchmark" "time/run";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-45s %15s\n" name pretty)
    (List.sort compare rows)

(* --- Streaming ingestion throughput (BENCH_stream.json) --------------------- *)

(* Replays recorded workload traces through the textual parser, the
   binary decoder, the bounded-memory streaming checker and the
   in-memory engine, and emits events/sec for each so the ingestion
   perf trajectory has a baseline. *)

let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Mclock.now_ns () in
    f ();
    let dt = Int64.to_float (Int64.sub (Mclock.now_ns ()) t0) /. 1e9 in
    if dt < !best then best := dt
  done;
  !best

let record_workload_trace name size seed =
  let w = Option.get (Workload.find name) in
  let program = w.Workload.build size in
  let res =
    Velodrome_harness.Common.run_once ~seed ~record_trace:true program
      (fun _ -> [])
  in
  (program.Velodrome_sim.Ast.names, Option.get res.Velodrome_sim.Run.trace)

type stream_row = {
  fixture : string;
  size : string;
  events : int;
  text_bytes : int;
  binary_bytes : int;
  text_parse_eps : float;
  binary_decode_eps : float;
  stream_check_eps : float;
  inmem_check_eps : float;
}

let engine_backend names =
  [ Backend.make (Velodrome_core.Engine.backend ()) names ]

let stream_bench ~repeats ~size ~size_name fixture =
  let names, trace = record_workload_trace fixture size 42 in
  let txt = Filename.temp_file "velodrome_bench" ".trace" in
  let velb = Filename.temp_file "velodrome_bench" ".velb" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove txt with Sys_error _ -> ());
      try Sys.remove velb with Sys_error _ -> ())
    (fun () ->
      Trace_io.write_file names trace txt;
      Trace_codec.write_file names trace velb;
      let events = Trace.length trace in
      let eps t = float_of_int events /. t in
      let t_text =
        time_best ~repeats (fun () -> ignore (Trace_io.read_file txt))
      in
      let t_binary =
        time_best ~repeats (fun () -> ignore (Trace_codec.read_file velb))
      in
      let t_stream =
        time_best ~repeats (fun () ->
            Velodrome_stream.Source.with_file velb (fun src ->
                ignore
                  (Velodrome_stream.Driver.run
                     (engine_backend src.Velodrome_stream.Source.names)
                     src)))
      in
      let t_inmem =
        time_best ~repeats (fun () ->
            let names, tr = Trace_codec.read_file velb in
            ignore (Backend.run_trace (engine_backend names) tr))
      in
      {
        fixture;
        size = size_name;
        events;
        text_bytes = (Unix.stat txt).Unix.st_size;
        binary_bytes = (Unix.stat velb).Unix.st_size;
        text_parse_eps = eps t_text;
        binary_decode_eps = eps t_binary;
        stream_check_eps = eps t_stream;
        inmem_check_eps = eps t_inmem;
      })

let stream_json_row ppf r =
  Format.fprintf ppf
    "  {@[<v 1>@ \"fixture\": %S,@ \"size\": %S,@ \"events\": %d,@ \
     \"text_bytes\": %d,@ \"binary_bytes\": %d,@ \
     \"text_parse_events_per_sec\": %.0f,@ \
     \"binary_decode_events_per_sec\": %.0f,@ \
     \"stream_check_events_per_sec\": %.0f,@ \
     \"inmem_check_events_per_sec\": %.0f@]@ }"
    r.fixture r.size r.events r.text_bytes r.binary_bytes r.text_parse_eps
    r.binary_decode_eps r.stream_check_eps r.inmem_check_eps

let emit_stream_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "[@[<v>@ %a@]@ ]@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           stream_json_row)
        rows)

let run_stream_benches ~smoke =
  let rows =
    if smoke then
      [ stream_bench ~repeats:2 ~size:Workload.Small ~size_name:"small"
          "multiset" ]
    else
      List.map
        (stream_bench ~repeats:3 ~size:Workload.Medium ~size_name:"medium")
        [ "multiset"; "jbb" ]
  in
  Printf.printf "%-12s %-7s %9s %10s %10s %12s %12s %12s %12s\n" "fixture"
    "size" "events" "text-B" "bin-B" "text-ev/s" "bin-ev/s" "stream-ev/s"
    "inmem-ev/s";
  List.iter
    (fun r ->
      Printf.printf "%-12s %-7s %9d %10d %10d %12.0f %12.0f %12.0f %12.0f\n"
        r.fixture r.size r.events r.text_bytes r.binary_bytes r.text_parse_eps
        r.binary_decode_eps r.stream_check_eps r.inmem_check_eps)
    rows;
  emit_stream_json "BENCH_stream.json" rows;
  Printf.printf "wrote BENCH_stream.json (%d fixtures)\n" (List.length rows)

(* --- Engine throughput (BENCH_engine.json) ----------------------------------- *)

(* The checking hot path itself: replay pre-recorded event arrays through
   the optimized Engine, the AeroDrome vector-clock engine and the basic
   Figure 2 engine, reporting events/sec and bytes-allocated/event for
   each — a three-way comparison, since AeroDrome is the ROADMAP's
   algorithmic route past the graph engine's throughput ceiling. Covers
   all workloads plus synthetic high-contention traces (where vector
   clocks should win), so representation changes in [lib/core] show up
   as a tracked artifact rather than a one-off measurement. *)

type engine_row = {
  g_fixture : string;
  g_size : string;
  g_events : int;
  g_engine_eps : float;
  g_engine_bpe : float;  (** bytes allocated per event, Engine replay *)
  g_aero_eps : float;
  g_aero_bpe : float;
  g_basic_eps : float;
  g_basic_bpe : float;
  g_warnings : int;
}

let events_of_trace tr = Array.of_list (Event.of_ops (Trace.to_list tr))

let replay_engine_events ~names events =
  let eng =
    Velodrome_core.Engine.create
      ~config:{ Velodrome_core.Engine.merge = true; record_graphs = false }
      names
  in
  Array.iter (Velodrome_core.Engine.on_event eng) events;
  Velodrome_core.Engine.finish eng;
  eng

let replay_basic_events ~names events =
  let eng =
    Velodrome_core.Basic.create ~config:{ Velodrome_core.Basic.gc = true } names
  in
  Array.iter (Velodrome_core.Basic.on_event eng) events;
  Velodrome_core.Basic.finish eng;
  eng

let replay_aero_events ~names events =
  let eng = Velodrome_core.Aero.create names in
  Array.iter (Velodrome_core.Aero.on_event eng) events;
  Velodrome_core.Aero.finish eng;
  eng

(* Allocation per event, measured over one full replay (including engine
   creation, which amortizes to nothing on real traces). *)
let bytes_per_event ~events f =
  let b0 = Gc.allocated_bytes () in
  ignore (Sys.opaque_identity (f ()));
  let b1 = Gc.allocated_bytes () in
  (b1 -. b0) /. float_of_int (max 1 events)

(* The basic engine is quadratic-ish on dense traces; cap the prefix it
   replays so the bench stays fast, and report events/sec on that
   prefix. *)
let basic_cap = 30_000

let engine_bench_row ~repeats ~size_name ~names ~fixture trace =
  let events = events_of_trace trace in
  let n = Array.length events in
  let basic_events =
    if n <= basic_cap then events else Array.sub events 0 basic_cap
  in
  let nb = Array.length basic_events in
  let t_engine =
    time_best ~repeats (fun () -> ignore (replay_engine_events ~names events))
  in
  let eng = ref (replay_engine_events ~names [||]) in
  let engine_bpe =
    bytes_per_event ~events:n (fun () ->
        eng := replay_engine_events ~names events;
        !eng)
  in
  let t_aero =
    time_best ~repeats (fun () -> ignore (replay_aero_events ~names events))
  in
  let aero_bpe =
    bytes_per_event ~events:n (fun () -> replay_aero_events ~names events)
  in
  let t_basic =
    time_best ~repeats (fun () ->
        ignore (replay_basic_events ~names basic_events))
  in
  let basic_bpe =
    bytes_per_event ~events:nb (fun () ->
        replay_basic_events ~names basic_events)
  in
  {
    g_fixture = fixture;
    g_size = size_name;
    g_events = n;
    g_engine_eps = float_of_int n /. t_engine;
    g_engine_bpe = engine_bpe;
    g_aero_eps = float_of_int n /. t_aero;
    g_aero_bpe = aero_bpe;
    g_basic_eps = float_of_int nb /. t_basic;
    g_basic_bpe = basic_bpe;
    g_warnings = List.length (Velodrome_core.Engine.warnings !eng);
  }

let synthetic_trace ~steps ~threads ~vars ~locks ~seed =
  let cfg =
    {
      Velodrome_trace.Gen.default with
      threads;
      vars;
      locks;
      labels = 8;
      steps;
      max_depth = 3;
    }
  in
  Gen.run (Velodrome_util.Rng.create seed) cfg

let engine_row_json r =
  let open Velodrome_util.Json in
  Obj
    [
      ("fixture", String r.g_fixture);
      ("size", String r.g_size);
      ("events", Int r.g_events);
      ("engine_events_per_sec", Float r.g_engine_eps);
      ("engine_bytes_per_event", Float r.g_engine_bpe);
      ("aero_events_per_sec", Float r.g_aero_eps);
      ("aero_bytes_per_event", Float r.g_aero_bpe);
      ("basic_events_per_sec", Float r.g_basic_eps);
      ("basic_bytes_per_event", Float r.g_basic_bpe);
      ("warnings", Int r.g_warnings);
    ]

let run_engine_benches ~smoke =
  let repeats = if smoke then 2 else 3 in
  let size = if smoke then Workload.Small else Workload.Medium in
  let size_name = if smoke then "small" else "medium" in
  let workload_rows =
    List.map
      (fun (w : Workload.t) ->
        let names, trace = record_workload_trace w.Workload.name size 42 in
        engine_bench_row ~repeats ~size_name ~names ~fixture:w.Workload.name
          trace)
      Workload.all
  in
  let synthetic_rows =
    let steps = if smoke then 20_000 else 120_000 in
    List.map
      (fun (name, threads, vars, locks) ->
        let names = Names.create () in
        let trace = synthetic_trace ~steps ~threads ~vars ~locks ~seed:2024 in
        engine_bench_row ~repeats ~size_name:"synthetic" ~names ~fixture:name
          trace)
      [ ("synthetic-dense", 8, 2, 1); ("synthetic-wide", 16, 64, 8) ]
  in
  let rows = workload_rows @ synthetic_rows in
  Printf.printf "%-16s %-10s %9s %13s %9s %13s %9s %13s %9s %5s\n" "fixture"
    "size" "events" "engine-ev/s" "eng-B/ev" "aero-ev/s" "aer-B/ev"
    "basic-ev/s" "bas-B/ev" "warn";
  List.iter
    (fun r ->
      Printf.printf
        "%-16s %-10s %9d %13.0f %9.1f %13.0f %9.1f %13.0f %9.1f %5d\n"
        r.g_fixture r.g_size r.g_events r.g_engine_eps r.g_engine_bpe
        r.g_aero_eps r.g_aero_bpe r.g_basic_eps r.g_basic_bpe r.g_warnings)
    rows;
  let oc = open_out "BENCH_engine.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Velodrome_util.Json.to_channel oc
        (Velodrome_util.Json.List (List.map engine_row_json rows)));
  Printf.printf "wrote BENCH_engine.json (%d fixtures)\n" (List.length rows)

(* --- Static instrumentation pruning (BENCH_statics.json) --------------------- *)

(* How much dynamic work does the static pre-pass save? For each fixture:
   run the static analysis, count the events a back-end sees with and
   without the static_atomic filter, time the Velodrome engine both ways,
   and check the warning sets outside proved blocks are identical (the
   soundness differential's claim, measured here on the bench fixtures
   too). *)

module Statics = Velodrome_statics.Statics

let counter_backend count names =
  let module C = struct
    type t = unit

    let name = "count"
    let create _ = ()
    let on_event () _ = incr count
    let pause_hint _ _ = false
    let finish () = ()
    let warnings () = []
  end in
  Backend.make (module C) names

(* Warnings projected to comparable keys, excluding proved-label ones —
   the same projection the test suite uses. *)
let projected st names warnings =
  Warning.dedup_by_label warnings
  |> List.filter_map (fun (w : Warning.t) ->
         match w.Warning.label with
         | Some l when Statics.proved st l -> None
         | label ->
           Some
             ( Warning.kind_to_string w.Warning.kind,
               Option.map (Names.label_name names) label,
               Option.map (Names.var_name names) w.Warning.var,
               w.Warning.blamed ))
  |> List.sort compare

type statics_row = {
  s_fixture : string;
  s_size : string;
  blocks : int;
  proved : int;
  proved_lipton : int;  (** proof-rule breakdown: Lipton reduction *)
  proved_cycle_free : int;  (** conflict-graph cycle-freedom *)
  may_violate : int;
  unknown : int;
  proved_global : int;  (** under the legacy whole-variable guard rule *)
  races : int;  (** static race pairs (pairwise rule) *)
  dead_sites : int;  (** sites the value analysis proves unreachable *)
  race_pair_delta : int;
      (** race pairs the value analysis removes vs a values-off run *)
  proved_values_delta : int;
      (** blocks proved only because of the value analysis *)
  analysis_ms : float;
      (** wall time of one full static analysis, monotonic clock *)
  values_analysis_ms : float;
      (** wall time of the value analysis alone, monotonic clock *)
  events_total : int;
  events_suppressed : int;
  events_suppressed_lipton : int;
      (** with the proved set restricted to Lipton-proved blocks — the
          delta against [events_suppressed] is what cycle-freedom buys *)
  events_suppressed_global : int;
  suppressed_pct : float;
  suppressed_pct_lipton : float;
  suppressed_pct_global : float;
  unfiltered_sec : float;
  filtered_sec : float;
  events_per_sec : float;
      (** filtered-engine throughput — the baseline diff's second gate *)
  speedup : float;
  warnings_identical : bool;
}

(* The bench artifact records how long the static pre-pass itself takes;
   gettimeofday can step under NTP, so this one is measured on the
   monotonic clock. *)
let time_ms_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Mclock.now_ns () in
    f ();
    let dt = Int64.to_float (Int64.sub (Mclock.now_ns ()) t0) /. 1e6 in
    if dt < !best then best := dt
  done;
  !best

(* Each fixture is analyzed under both mover rules; the delta between
   [proved] and [proved_global] (and between the two suppressed-event
   counts) is the precision the pairwise race detector buys. Timing runs
   use the pairwise filter only. *)
let statics_bench ~repeats ~size ~size_name fixture =
  let w = Option.get (Workload.find fixture) in
  let program = w.Workload.build size in
  let names = program.Velodrome_sim.Ast.names in
  let st = Statics.analyze program in
  let st_global =
    Statics.analyze ~rule:Velodrome_statics.Movers.Global_guard program
  in
  let st_novalues = Statics.analyze ~values:false program in
  let analysis_ms =
    time_ms_best ~repeats (fun () -> ignore (Statics.analyze program))
  in
  let values_analysis_ms =
    time_ms_best ~repeats (fun () ->
        ignore (Velodrome_statics.Values.analyze program))
  in
  let filter_of ?lipton_only st b =
    let proved, suppress_var = Statics.filter_predicates ?lipton_only st in
    Filters.static_atomic ~proved ~suppress_var b
  in
  let static_filter = filter_of st in
  let config =
    {
      Velodrome_sim.Run.default_config with
      policy = Velodrome_sim.Run.Random 42;
    }
  in
  let count_with wrap =
    let c = ref 0 in
    ignore
      (Velodrome_sim.Run.run ~config program [ wrap (counter_backend c names) ]);
    !c
  in
  let events_total = count_with Fun.id in
  let events_filtered = count_with static_filter in
  let events_filtered_lipton = count_with (filter_of ~lipton_only:true st) in
  let events_filtered_global = count_with (filter_of st_global) in
  let velodrome_run wrap =
    (Velodrome_sim.Run.run ~config program
       [ wrap (Backend.make (Velodrome_core.Engine.backend ()) names) ])
      .Velodrome_sim.Run.warnings
  in
  let unfiltered_sec =
    time_best ~repeats (fun () -> ignore (velodrome_run Fun.id))
  in
  let filtered_sec =
    time_best ~repeats (fun () -> ignore (velodrome_run static_filter))
  in
  let warnings_identical =
    projected st names (velodrome_run Fun.id)
    = projected st names (velodrome_run static_filter)
  in
  let suppressed = events_total - events_filtered in
  let suppressed_lipton = events_total - events_filtered_lipton in
  let suppressed_global = events_total - events_filtered_global in
  let pct n =
    if events_total = 0 then 0.
    else 100. *. float_of_int n /. float_of_int events_total
  in
  {
    s_fixture = fixture;
    s_size = size_name;
    blocks = Statics.block_count st;
    proved = Statics.proved_count st;
    proved_lipton = Statics.proved_lipton_count st;
    proved_cycle_free = Statics.proved_cycle_free_count st;
    may_violate = Statics.may_violate_count st;
    unknown = Statics.unknown_count st;
    proved_global = Statics.proved_count st_global;
    races = Statics.race_pair_count st;
    dead_sites = Statics.dead_site_count st;
    race_pair_delta =
      Statics.race_pair_count st_novalues - Statics.race_pair_count st;
    proved_values_delta =
      Statics.proved_count st - Statics.proved_count st_novalues;
    analysis_ms;
    values_analysis_ms;
    events_total;
    events_suppressed = suppressed;
    events_suppressed_lipton = suppressed_lipton;
    events_suppressed_global = suppressed_global;
    suppressed_pct = pct suppressed;
    suppressed_pct_lipton = pct suppressed_lipton;
    suppressed_pct_global = pct suppressed_global;
    unfiltered_sec;
    filtered_sec;
    events_per_sec =
      (if filtered_sec > 0. then float_of_int events_total /. filtered_sec
       else 0.);
    speedup = (if filtered_sec > 0. then unfiltered_sec /. filtered_sec else 1.);
    warnings_identical;
  }

let statics_row_json r =
  let open Velodrome_util.Json in
  Obj
    [
      ("fixture", String r.s_fixture);
      ("size", String r.s_size);
      ("blocks", Int r.blocks);
      ("proved", Int r.proved);
      ("proved_lipton", Int r.proved_lipton);
      ("proved_cycle_free", Int r.proved_cycle_free);
      ("may_violate", Int r.may_violate);
      ("unknown", Int r.unknown);
      ("proved_global", Int r.proved_global);
      ("proved_delta", Int (r.proved - r.proved_global));
      ("races", Int r.races);
      ("dead_sites", Int r.dead_sites);
      ("race_pair_delta", Int r.race_pair_delta);
      ("proved_values_delta", Int r.proved_values_delta);
      ("analysis_ms", Float r.analysis_ms);
      ("values_analysis_ms", Float r.values_analysis_ms);
      ("events_total", Int r.events_total);
      ("events_suppressed", Int r.events_suppressed);
      ("events_suppressed_lipton", Int r.events_suppressed_lipton);
      ("events_suppressed_global", Int r.events_suppressed_global);
      ("suppressed_pct", Float r.suppressed_pct);
      ("suppressed_pct_lipton", Float r.suppressed_pct_lipton);
      ("suppressed_pct_global", Float r.suppressed_pct_global);
      ("unfiltered_sec", Float r.unfiltered_sec);
      ("filtered_sec", Float r.filtered_sec);
      ("events_per_sec", Float r.events_per_sec);
      ("speedup", Float r.speedup);
      ("warnings_identical", Bool r.warnings_identical);
    ]

let run_statics_benches ~smoke =
  let fixtures =
    [ "multiset"; "jbb"; "mtrt"; "raja"; "handoff"; "snapshot"; "dispatch" ]
  in
  let rows =
    if smoke then
      List.map
        (statics_bench ~repeats:2 ~size:Workload.Small ~size_name:"small")
        fixtures
    else
      List.map
        (statics_bench ~repeats:3 ~size:Workload.Medium ~size_name:"medium")
        fixtures
  in
  Printf.printf
    "%-12s %-7s %7s %9s %11s %6s %6s %7s %9s %9s %9s %7s %7s %8s %9s %10s\n"
    "fixture" "size" "blocks" "lip/cf" "prv/global" "races" "dead"
    "vals-d" "anls-ms" "vals-ms" "events" "supp-%" "lip-%" "glob-%"
    "speedup" "warn-same";
  List.iter
    (fun r ->
      Printf.printf
        "%-12s %-7s %7d %5d/%3d %7d/%3d %6d %6d %3d/%3d %9.2f %9.2f %9d \
         %6.1f%% %6.1f%% %7.1f%% %8.2fx %10b\n"
        r.s_fixture r.s_size r.blocks r.proved_lipton r.proved_cycle_free
        r.proved r.proved_global r.races r.dead_sites r.race_pair_delta
        r.proved_values_delta r.analysis_ms r.values_analysis_ms
        r.events_total r.suppressed_pct r.suppressed_pct_lipton
        r.suppressed_pct_global r.speedup r.warnings_identical)
    rows;
  let oc = open_out "BENCH_statics.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Velodrome_util.Json.to_channel oc
        (Velodrome_util.Json.List (List.map statics_row_json rows)));
  Printf.printf "wrote BENCH_statics.json (%d fixtures)\n" (List.length rows)

(* --- Witness-guided prediction (BENCH_predict.json) --------------------------- *)

(* The predictive-atomicity study. For every workload and a sweep of
   generated programs, run the witness-guided predictor (one round-robin
   observation, then forced replays of static witness schedules) and the
   pre-existing adversarial-scheduler baseline (Atomizer-guided pausing,
   one run per seed, the Study S2 configuration), and count the unique
   violating blocks each strategy certifies. Every emitted prediction is
   re-replayed from its schedule and re-certified by the engine trio, so
   the artifact's `uncertified` field is an honest recount, not an echo
   of the predictor's claim. The tracked claim: prediction from a single
   observation finds strictly more unique violating blocks than the
   adversarial sweep. *)

module Predict = Velodrome_predict.Predict
module SSet = Set.Make (String)

type predict_row = {
  p_fixture : string;
  p_blocks : int;
  p_may_violate : int;
  p_predicted : int;
  p_certified : int;  (** predictions surviving the independent recheck *)
  p_unpredicted : int;  (** may-violate blocks no plan certified *)
  p_observed_blamed : int;  (** blocks the plain observation already flames *)
  p_adversarial : int;  (** unique blocks blamed across the adversarial runs *)
  p_rr_plus_predicted : int;  (** unique blocks: observation + predictions *)
  p_predict_ms : float;
}

let adversarial_blamed program seeds =
  let names = program.Velodrome_sim.Ast.names in
  List.fold_left
    (fun acc seed ->
      let res =
        Velodrome_harness.Common.run_once ~seed ~adversarial:true program
          (fun n ->
            [
              Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
              Backend.make (Velodrome_core.Engine.backend ()) n;
            ])
      in
      List.fold_left
        (fun acc (w : Warning.t) ->
          if w.Warning.analysis = "velodrome" && w.Warning.blamed then
            match Velodrome_harness.Common.label_of_warning names w with
            | Some l -> SSet.add l acc
            | None -> acc
          else acc)
        acc res.Velodrome_sim.Run.warnings)
    SSet.empty seeds

let predict_bench ~seeds ~fixture program =
  let names = program.Velodrome_sim.Ast.names in
  let st = Statics.analyze program in
  let p = ref (Predict.run program st) in
  let predict_ms =
    time_ms_best ~repeats:1 (fun () -> p := Predict.run program st)
  in
  let p = !p in
  let preds = Predict.predictions p in
  let certified =
    List.length
      (List.filter
         (fun (pr : Predict.prediction) ->
           match
             Predict.replay_and_certify program pr.Predict.label
               pr.Predict.plan.Velodrome_predict.Plan.waypoints
           with
           | Ok _ -> true
           | Error _ -> false)
         preds)
  in
  let observed =
    SSet.of_list
      (List.map
         (Names.label_name names)
         (Predict.observed_blamed p))
  in
  let predicted_names =
    SSet.of_list (List.map (fun (pr : Predict.prediction) -> pr.Predict.name) preds)
  in
  let adv = adversarial_blamed program seeds in
  {
    p_fixture = fixture;
    p_blocks = Statics.block_count st;
    p_may_violate = Statics.may_violate_count st;
    p_predicted = List.length preds;
    p_certified = certified;
    p_unpredicted = Predict.unpredicted_count p;
    p_observed_blamed = SSet.cardinal observed;
    p_adversarial = SSet.cardinal adv;
    p_rr_plus_predicted = SSet.cardinal (SSet.union observed predicted_names);
    p_predict_ms = predict_ms;
  }

let predict_row_json r =
  let open Velodrome_util.Json in
  Obj
    [
      ("fixture", String r.p_fixture);
      ("blocks", Int r.p_blocks);
      ("may_violate", Int r.p_may_violate);
      ("predicted", Int r.p_predicted);
      ("certified", Int r.p_certified);
      ("uncertified", Int (r.p_predicted - r.p_certified));
      ("unpredicted", Int r.p_unpredicted);
      ("observed_blamed", Int r.p_observed_blamed);
      ("adversarial_unique", Int r.p_adversarial);
      ("rr_plus_predicted_unique", Int r.p_rr_plus_predicted);
      ("predict_ms", Float r.p_predict_ms);
    ]

let sum f rows = List.fold_left (fun a r -> a + f r) 0 rows

let run_predict_benches ~smoke =
  (* The Study S2 adversarial configuration: one adversarial run per
     seed, default pause budget. *)
  let seeds = if smoke then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let size = if smoke then Workload.Small else Workload.Medium in
  let progen_count = if smoke then 30 else 300 in
  let workload_rows =
    List.map
      (fun (w : Workload.t) ->
        predict_bench ~seeds ~fixture:w.Workload.name (w.Workload.build size))
      Workload.all
  in
  let progen_rows =
    List.init progen_count (fun k ->
        let s = k + 1 in
        let program, _ =
          Velodrome_sim.Progen.generate_info (Velodrome_util.Rng.create s)
        in
        predict_bench ~seeds ~fixture:(Printf.sprintf "progen-%d" s) program)
  in
  Printf.printf "%-14s %7s %7s %10s %10s %7s %10s %8s %8s %11s\n" "fixture"
    "blocks" "may-v" "predicted" "certified" "unpred" "obs-blame" "adv-uniq"
    "rr+pred" "predict-ms";
  List.iter
    (fun r ->
      Printf.printf "%-14s %7d %7d %10d %10d %7d %10d %8d %8d %11.2f\n"
        r.p_fixture r.p_blocks r.p_may_violate r.p_predicted r.p_certified
        r.p_unpredicted r.p_observed_blamed r.p_adversarial
        r.p_rr_plus_predicted r.p_predict_ms)
    workload_rows;
  let adv_total = sum (fun r -> r.p_adversarial) (workload_rows @ progen_rows) in
  let rr_pred_total =
    sum (fun r -> r.p_rr_plus_predicted) (workload_rows @ progen_rows)
  in
  let uncertified_total =
    sum (fun r -> r.p_predicted - r.p_certified) (workload_rows @ progen_rows)
  in
  Printf.printf
    "progen sweep: %d programs, %d predicted (%d certified), adversarial \
     %d unique vs rr+predicted %d unique\n"
    progen_count
    (sum (fun r -> r.p_predicted) progen_rows)
    (sum (fun r -> r.p_certified) progen_rows)
    (sum (fun r -> r.p_adversarial) progen_rows)
    (sum (fun r -> r.p_rr_plus_predicted) progen_rows);
  Printf.printf
    "total: adversarial %d unique vs rr+predicted %d unique blocks \
     (strict dominance: %b), %d uncertified\n"
    adv_total rr_pred_total
    (rr_pred_total > adv_total)
    uncertified_total;
  let open Velodrome_util.Json in
  let progen_summary =
    Obj
      [
        ("programs", Int progen_count);
        ("seed_start", Int 1);
        ("predicted", Int (sum (fun r -> r.p_predicted) progen_rows));
        ("certified", Int (sum (fun r -> r.p_certified) progen_rows));
        ( "uncertified",
          Int (sum (fun r -> r.p_predicted - r.p_certified) progen_rows) );
        ( "observed_blamed",
          Int (sum (fun r -> r.p_observed_blamed) progen_rows) );
        ("adversarial_unique", Int (sum (fun r -> r.p_adversarial) progen_rows));
        ( "rr_plus_predicted_unique",
          Int (sum (fun r -> r.p_rr_plus_predicted) progen_rows) );
        ( "predict_ms_total",
          Float
            (List.fold_left (fun a r -> a +. r.p_predict_ms) 0. progen_rows) );
      ]
  in
  let doc =
    Obj
      [
        ("workloads", List (List.map predict_row_json workload_rows));
        ("progen", progen_summary);
        ( "summary",
          Obj
            [
              ( "programs",
                Int (List.length workload_rows + progen_count) );
              ( "predicted",
                Int (sum (fun r -> r.p_predicted) (workload_rows @ progen_rows))
              );
              ( "certified",
                Int (sum (fun r -> r.p_certified) (workload_rows @ progen_rows))
              );
              ("uncertified", Int uncertified_total);
              ( "observed_blamed",
                Int
                  (sum
                     (fun r -> r.p_observed_blamed)
                     (workload_rows @ progen_rows)) );
              ("adversarial_unique", Int adv_total);
              ("rr_plus_predicted_unique", Int rr_pred_total);
              ("strict_dominance", Bool (rr_pred_total > adv_total));
            ] );
      ]
  in
  let oc = open_out "BENCH_predict.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Velodrome_util.Json.to_channel oc doc);
  Printf.printf "wrote BENCH_predict.json (%d workloads, %d generated)\n"
    (List.length workload_rows)
    progen_count

(* --- Multicore serve throughput (BENCH_serve.json) --------------------------- *)

(* Sweeps the serve domain pool over a generated corpus of complete
   [.velb] streams — the production shape: many independent client
   traces, one checker — and reports per-domain-count throughput, queue
   wait and the resident-stream high-water mark. [cores] records what
   the host actually offers so the validator can judge the scaling
   numbers honestly: on a single-core container an 8-domain pool cannot
   and should not show a speedup. *)

module Serve = Velodrome_serve.Serve

type serve_row = {
  sv_domains : int;
  sv_streams : int;
  sv_events : int;
  sv_warnings : int;
  sv_eps : float;
  sv_wait_ms_mean : float;
  sv_max_resident : int;
  sv_queue_capacity : int;
}

let write_serve_corpus dir ~streams ~steps =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  List.init streams (fun k ->
      let names = Names.create () in
      let trace =
        synthetic_trace ~steps
          ~threads:(2 + (k mod 6))
          ~vars:(4 + (k mod 29))
          ~locks:(1 + (k mod 4))
          ~seed:(1000 + k)
      in
      let path = Filename.concat dir (Printf.sprintf "stream-%03d.velb" k) in
      Velodrome_trace.Trace_codec.write_file names trace path;
      path)

let serve_backends names =
  [ Velodrome_analysis.Backend.make (Velodrome_core.Engine.backend ()) names ]

let serve_bench_row ~paths domains =
  let s =
    Serve.run ~jobs:domains ~backends:serve_backends
      ~on_result:(fun _ -> ())
      paths
  in
  let secs = Int64.to_float s.Serve.elapsed_ns /. 1e9 in
  {
    sv_domains = domains;
    sv_streams = s.Serve.streams;
    sv_events = s.Serve.events;
    sv_warnings = s.Serve.warnings;
    sv_eps = (if secs > 0. then float_of_int s.Serve.events /. secs else 0.);
    sv_wait_ms_mean =
      (if s.Serve.streams > 0 then
         Int64.to_float s.Serve.queue_wait_ns /. 1e6
         /. float_of_int s.Serve.streams
       else 0.);
    sv_max_resident = s.Serve.max_resident;
    sv_queue_capacity = s.Serve.queue_capacity;
  }

let serve_row_json ~cores r =
  let open Velodrome_util.Json in
  Obj
    [
      ("domains", Int r.sv_domains);
      ("cores", Int cores);
      ("streams", Int r.sv_streams);
      ("events", Int r.sv_events);
      ("warnings", Int r.sv_warnings);
      ("events_per_sec", Float r.sv_eps);
      ("queue_wait_ms_mean", Float r.sv_wait_ms_mean);
      ("max_resident_streams", Int r.sv_max_resident);
      ("queue_capacity", Int r.sv_queue_capacity);
    ]

let run_serve_benches ~smoke =
  let streams = if smoke then 40 else 200 in
  let steps = if smoke then 2_000 else 10_000 in
  let cores = Domain.recommended_domain_count () in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "velodrome-serve-bench-%d" (Unix.getpid ()))
  in
  let paths = write_serve_corpus dir ~streams ~steps in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let rows = List.map (serve_bench_row ~paths) [ 1; 2; 4; 8 ] in
      Printf.printf "%8s %8s %9s %12s %13s %13s %10s\n" "domains" "streams"
        "events" "events/s" "wait-ms-mean" "max-resident" "queue-cap";
      List.iter
        (fun r ->
          Printf.printf "%8d %8d %9d %12.0f %13.2f %13d %10d\n" r.sv_domains
            r.sv_streams r.sv_events r.sv_eps r.sv_wait_ms_mean
            r.sv_max_resident r.sv_queue_capacity)
        rows;
      (match rows with
      | base :: _ ->
        List.iter
          (fun r ->
            if r.sv_events <> base.sv_events || r.sv_warnings <> base.sv_warnings
            then begin
              Printf.printf
                "serve: NONDETERMINISM at %d domains (events %d vs %d, \
                 warnings %d vs %d)\n"
                r.sv_domains r.sv_events base.sv_events r.sv_warnings
                base.sv_warnings;
              exit 1
            end)
          rows
      | [] -> ());
      let oc = open_out "BENCH_serve.json" in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Velodrome_util.Json.to_channel oc
            (Velodrome_util.Json.List (List.map (serve_row_json ~cores) rows)));
      Printf.printf "wrote BENCH_serve.json (%d sweeps, %d cores)\n"
        (List.length rows) cores)

(* --- Full table regeneration ------------------------------------------------ *)

let full_run () =
  print_endline "=== Bechamel micro-benchmarks (one per table/figure) ===";
  benchmark ();
  print_newline ();
  print_endline "=== Table 1: slowdowns and node statistics ===";
  Velodrome_harness.Table1.print Format.std_formatter
    (Velodrome_harness.Table1.run ());
  print_newline ();
  print_endline "=== Table 2: warnings (all methods assumed atomic) ===";
  Velodrome_harness.Table2.print Format.std_formatter
    (Velodrome_harness.Table2.run ());
  print_newline ();
  print_endline "=== Study S2: adversarial scheduling coverage ===";
  Velodrome_harness.Study.print_coverage Format.std_formatter
    (Velodrome_harness.Study.coverage ());
  print_newline ();
  print_endline "=== Study S3: injected synchronization defects ===";
  Velodrome_harness.Study.print_injection Format.std_formatter
    (Velodrome_harness.Study.injection ());
  print_newline ();
  print_endline "=== Study S4: single-core scheduling sensitivity ===";
  Velodrome_harness.Study.print_single_core Format.std_formatter
    (Velodrome_harness.Study.single_core ())

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let engine_only = Array.exists (( = ) "--engine") Sys.argv in
  let statics_only = Array.exists (( = ) "--statics") Sys.argv in
  let predict_only = Array.exists (( = ) "--predict") Sys.argv in
  let serve_only = Array.exists (( = ) "--serve") Sys.argv in
  if serve_only then begin
    print_endline "=== Multicore serve throughput ===";
    run_serve_benches ~smoke
  end
  else if engine_only then begin
    print_endline "=== Engine checking throughput ===";
    run_engine_benches ~smoke
  end
  else if statics_only then begin
    print_endline "=== Static instrumentation pruning ===";
    run_statics_benches ~smoke
  end
  else if predict_only then begin
    print_endline "=== Witness-guided prediction vs adversarial scheduling ===";
    run_predict_benches ~smoke
  end
  else begin
    print_endline "=== Streaming ingestion throughput ===";
    run_stream_benches ~smoke;
    print_newline ();
    print_endline "=== Engine checking throughput ===";
    run_engine_benches ~smoke;
    print_newline ();
    print_endline "=== Static instrumentation pruning ===";
    run_statics_benches ~smoke;
    print_newline ();
    print_endline "=== Witness-guided prediction vs adversarial scheduling ===";
    run_predict_benches ~smoke;
    print_newline ();
    print_endline "=== Multicore serve throughput ===";
    run_serve_benches ~smoke;
    print_newline ();
    if not smoke then full_run ()
  end
